// Closed-form solution when the cycle-time matrix has rank 1
// (paper Section 4.3.2): r_i = 1/t_i1, c_j = t_11/t_1j gives
// r_i t_ij c_j = 1 for every processor — perfect balance, no idle time.
#pragma once

#include <optional>

#include "core/allocation.hpp"
#include "core/cycle_time_grid.hpp"

namespace hetgrid {

/// Returns the perfectly balanced allocation if `grid` is rank 1 within
/// `tol`, std::nullopt otherwise.
std::optional<GridAllocation> solve_rank1(const CycleTimeGrid& grid,
                                          double tol = 1e-12);

/// Unconditional variant: computes r_i = 1/t_i1, c_j = t_11/t_1j and
/// tight-normalizes. For rank-1 grids this matches solve_rank1; for other
/// grids it is a (feasible, tight, but possibly poor) projection baseline.
GridAllocation rank1_projection(const CycleTimeGrid& grid);

}  // namespace hetgrid
