#include "core/arrangement.hpp"

#include <algorithm>

namespace hetgrid {

namespace {

// Backtracking filler for non-decreasing arrangements. Positions are filled
// row-major; a value placed at (i,j) must be >= the left and upper
// neighbors. Duplicate pool values are skipped at each position so each
// distinct value grid is produced exactly once.
struct NonDecreasingFiller {
  std::size_t p, q;
  std::vector<double> sorted_pool;  // ascending
  std::vector<bool> used;
  std::vector<double> cell;  // row-major, filled prefix valid
  const std::function<bool(const CycleTimeGrid&)>* visit;
  std::uint64_t count = 0;
  bool stopped = false;

  void recurse(std::size_t pos) {
    if (stopped) return;
    if (pos == p * q) {
      ++count;
      if (!(*visit)(CycleTimeGrid(p, q, cell))) stopped = true;
      return;
    }
    const std::size_t i = pos / q, j = pos % q;
    double lower_bound = 0.0;
    if (j > 0) lower_bound = std::max(lower_bound, cell[pos - 1]);
    if (i > 0) lower_bound = std::max(lower_bound, cell[pos - q]);

    double last_tried = -1.0;
    bool tried_any = false;
    for (std::size_t k = 0; k < sorted_pool.size(); ++k) {
      if (used[k]) continue;
      const double v = sorted_pool[k];
      if (v < lower_bound) continue;
      if (tried_any && v == last_tried) continue;  // duplicate value
      tried_any = true;
      last_tried = v;
      used[k] = true;
      cell[pos] = v;
      recurse(pos + 1);
      used[k] = false;
      if (stopped) return;
    }
  }
};

// Backtracking over all distinct value grids (no ordering constraint).
struct AllFiller {
  std::size_t p, q;
  std::vector<double> sorted_pool;
  std::vector<bool> used;
  std::vector<double> cell;
  const std::function<bool(const CycleTimeGrid&)>* visit;
  std::uint64_t count = 0;
  bool stopped = false;

  void recurse(std::size_t pos) {
    if (stopped) return;
    if (pos == p * q) {
      ++count;
      if (!(*visit)(CycleTimeGrid(p, q, cell))) stopped = true;
      return;
    }
    double last_tried = -1.0;
    bool tried_any = false;
    for (std::size_t k = 0; k < sorted_pool.size(); ++k) {
      if (used[k]) continue;
      const double v = sorted_pool[k];
      if (tried_any && v == last_tried) continue;
      tried_any = true;
      last_tried = v;
      used[k] = true;
      cell[pos] = v;
      recurse(pos + 1);
      used[k] = false;
      if (stopped) return;
    }
  }
};

}  // namespace

std::uint64_t enumerate_nondecreasing_arrangements(
    std::size_t p, std::size_t q, std::vector<double> pool,
    const std::function<bool(const CycleTimeGrid&)>& visit) {
  HG_CHECK(pool.size() == p * q,
           "pool size " << pool.size() << " != " << p * q);
  NonDecreasingFiller f;
  f.p = p;
  f.q = q;
  f.sorted_pool = std::move(pool);
  std::sort(f.sorted_pool.begin(), f.sorted_pool.end());
  f.used.assign(f.sorted_pool.size(), false);
  f.cell.assign(p * q, 0.0);
  f.visit = &visit;
  f.recurse(0);
  return f.count;
}

std::uint64_t enumerate_all_arrangements(
    std::size_t p, std::size_t q, std::vector<double> pool,
    const std::function<bool(const CycleTimeGrid&)>& visit) {
  HG_CHECK(pool.size() == p * q,
           "pool size " << pool.size() << " != " << p * q);
  AllFiller f;
  f.p = p;
  f.q = q;
  f.sorted_pool = std::move(pool);
  std::sort(f.sorted_pool.begin(), f.sorted_pool.end());
  f.used.assign(f.sorted_pool.size(), false);
  f.cell.assign(p * q, 0.0);
  f.visit = &visit;
  f.recurse(0);
  return f.count;
}

OptimalArrangement solve_optimal_arrangement(std::size_t p, std::size_t q,
                                             std::vector<double> pool,
                                             const ExactSolverOptions& opts) {
  OptimalArrangement best{CycleTimeGrid(1, 1, {1.0}), {}, 0};
  bool found = false;
  best.arrangements_tried = enumerate_nondecreasing_arrangements(
      p, q, std::move(pool), [&](const CycleTimeGrid& grid) {
        ExactSolution sol = solve_exact(grid, opts);
        if (!found || sol.obj2 > best.solution.obj2) {
          found = true;
          best.grid = grid;
          best.solution = std::move(sol);
        }
        return true;
      });
  HG_INTERNAL_CHECK(found, "no arrangement enumerated");
  return best;
}

OptimalArrangement solve_optimal_arrangement(std::size_t p, std::size_t q,
                                             std::vector<double> pool) {
  return solve_optimal_arrangement(p, q, std::move(pool),
                                   ExactSolverOptions{});
}

}  // namespace hetgrid
