// Closed-form optimum for a fixed 2 x 2 arrangement.
//
// The paper's extended version gives the analytical solution for 2 x 2
// grids; it follows directly from the spanning-tree characterization
// (Section 4.3.1): K_{2,2} has exactly four spanning trees, each obtained
// by dropping one edge, and each induces a closed-form candidate point.
// The optimum is the best candidate whose dropped constraint still holds.
// This is both a fast path (no enumeration machinery) and an independent
// oracle the tests check solve_exact against.
#pragma once

#include "core/allocation.hpp"
#include "core/cycle_time_grid.hpp"

namespace hetgrid {

struct Exact2x2Solution {
  GridAllocation alloc;
  double obj2 = 0.0;
  /// Which constraint (i*2+j) is slack at the optimum; 4 means all four
  /// are tight (the rank-1 case).
  int slack_constraint = 4;
};

/// Closed-form solution of Obj2 for a 2 x 2 grid. Equivalent to
/// solve_exact but O(1).
Exact2x2Solution solve_exact_2x2(const CycleTimeGrid& grid);

}  // namespace hetgrid
