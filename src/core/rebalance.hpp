// Online rebalancing: re-solving the paper's allocation from *estimated*
// cycle-times at a panel boundary, with a migration-cost threshold.
//
// The paper computes (r_i, c_j) once from static t_ij. On a non-dedicated
// machine the effective rates drift, and the static plan then runs at the
// speed of the slowed processor. plan_rebalance() is the decision half of
// the actuation path (doc/rebalance.md):
//
//   1. re-solve the allocation for the estimated rate grid with the
//      heuristic solver (optionally upgraded to the exact spanning-tree
//      solver when the grid is small enough — the same budget rule the
//      placement server uses);
//   2. round the shares to per-line slot counts of the existing panel
//      period (largest remainder, every line keeps >= 1 slot);
//   3. rewrite the current slot maps with *minimal churn*: lines losing
//      slots give up their highest-index slots, lines gaining slots claim
//      the freed slots round-robin — so the number of migrated block
//      rows/columns equals the L1 distance of the multiplicity vectors,
//      never a full relayout;
//   4. price the proposal: predicted trailing-sweep makespan under the
//      current vs the proposed maps, and the migration bill (blocks whose
//      owner changes x per-block transfer cost). Act only when the
//      predicted gain over the remaining sweeps clears both the relative
//      min_gain band and cost_threshold x migration cost.
//
// Everything here is a pure function of its inputs — no clocks, no
// randomness — which is what makes the runtime's migration schedule
// bit-identical across thread counts and schedulers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cycle_time_grid.hpp"
#include "obs/cycle_estimator.hpp"

namespace hetgrid {

/// Thresholds of the act/hold decision. Defaults are deliberately
/// conservative: a re-solve that predicts less than 5% per-sweep gain, or
/// whose gain over the remaining sweeps does not repay the migration bill,
/// changes nothing.
struct RebalanceOptions {
  /// Required relative per-sweep improvement: act only when
  /// proposed_sweep < (1 - min_gain) * current_sweep.
  double min_gain = 0.05;
  /// Required ratio of predicted total gain to migration cost.
  double cost_threshold = 1.0;
  /// Upgrade the heuristic re-solve with the exact spanning-tree solver
  /// when exact_solver_cost(p, q) <= exact_budget (0 disables).
  std::uint64_t exact_budget = 0;
};

/// The trailing region the decision prices: block rows [row_lo, row_hi) x
/// block columns [col_lo, col_hi), optionally restricted to the lower
/// triangle (Cholesky). `remaining_sweeps` converts the per-sweep gain
/// into a total (for a shrinking trailing matrix, (nb - k) / 3 is the
/// right order); `per_block_move_cost` is the transfer seconds for one
/// block and `block_multiplier` how many matrices one owner change drags
/// along (3 for MMM's A, B, C; 1 for the factorizations).
struct RebalanceRegion {
  std::size_t row_lo = 0, row_hi = 0;
  std::size_t col_lo = 0, col_hi = 0;
  bool lower_only = false;
  double remaining_sweeps = 1.0;
  double per_block_move_cost = 0.0;
  double block_multiplier = 1.0;
};

/// The planner's verdict. `row_map` / `col_map` are the proposed period
/// slot maps (equal to the current ones when nothing changed); callers
/// apply them only when `act` is true.
struct RebalanceDecision {
  bool act = false;
  std::vector<std::size_t> row_map, col_map;
  double current_sweep = 0.0;   // predicted region sweep, current maps
  double proposed_sweep = 0.0;  // same, proposed maps
  double predicted_gain = 0.0;  // (current - proposed) * remaining_sweeps
  double migration_cost = 0.0;  // blocks_to_move * per_block_move_cost
  std::size_t blocks_to_move = 0;
  std::size_t row_slots_changed = 0, col_slots_changed = 0;
  bool exact = false;  // allocation came from the exact solver
};

/// One applied rebalance, as recorded by the runtime / simulator and
/// surfaced in the imbalance report (obs/imbalance.hpp).
struct RebalanceEvent {
  std::size_t step = 0;
  double current_sweep = 0.0;
  double proposed_sweep = 0.0;
  double migration_cost = 0.0;
  std::size_t blocks_moved = 0;
};

/// Re-solves and prices one rebalance at a panel boundary. `rates` is the
/// estimated p x q cycle-time grid; `row_map` / `col_map` the live panel
/// slot maps (values < p resp. q, every line owning >= 1 slot). Pure and
/// deterministic.
RebalanceDecision plan_rebalance(const CycleTimeGrid& rates,
                                 const std::vector<std::size_t>& row_map,
                                 const std::vector<std::size_t>& col_map,
                                 const RebalanceRegion& region,
                                 const RebalanceOptions& opt = {});

/// Assembles the estimated rate grid a re-solve runs on: lane (proc, op)
/// of `estimates` supplies seconds-per-unit once it has >= min_samples
/// samples; unsampled processors fall back to the static `fallback` entry.
CycleTimeGrid estimated_rate_grid(const std::vector<CycleEstimate>& estimates,
                                  const CycleTimeGrid& fallback, ObsOp op,
                                  std::uint64_t min_samples);

}  // namespace hetgrid
