#include "core/heuristic.hpp"

#include <algorithm>
#include <numeric>

#include "svd/svd.hpp"

namespace hetgrid {

namespace {

// Dominant singular triplet of the grid's T^inv (or T), mapped back to raw
// row/column shares.
GridAllocation raw_svd_shares(const CycleTimeGrid& grid,
                              bool approximate_inverse) {
  const std::size_t p = grid.rows(), q = grid.cols();
  GridAllocation alloc;
  alloc.r.resize(p);
  alloc.c.resize(q);

  if (approximate_inverse) {
    // T^inv ~= s * a * b^T  =>  1/t_ij ~= (s a_i) b_j  =>  r_i t_ij c_j ~= 1
    // with r_i = s a_i, c_j = b_j.
    const std::vector<double> inv = grid.inverse_row_major();
    Matrix m(p, q, 0.0);
    for (std::size_t i = 0; i < p; ++i)
      for (std::size_t j = 0; j < q; ++j) m(i, j) = inv[i * q + j];
    const SingularTriplet t = dominant_triplet(m.view());
    for (std::size_t i = 0; i < p; ++i) alloc.r[i] = t.sigma * t.u[i];
    for (std::size_t j = 0; j < q; ++j) alloc.c[j] = t.v[j];
  } else {
    // T ~= s * a * b^T  =>  r_i = 1/(s a_i), c_j = 1/b_j.
    Matrix m(p, q, 0.0);
    for (std::size_t i = 0; i < p; ++i)
      for (std::size_t j = 0; j < q; ++j) m(i, j) = grid(i, j);
    const SingularTriplet t = dominant_triplet(m.view());
    for (std::size_t i = 0; i < p; ++i) {
      HG_INTERNAL_CHECK(t.u[i] > 0.0,
                        "dominant left singular vector of a positive matrix "
                        "must be positive");
      alloc.r[i] = 1.0 / (t.sigma * t.u[i]);
    }
    for (std::size_t j = 0; j < q; ++j) {
      HG_INTERNAL_CHECK(t.v[j] > 0.0,
                        "dominant right singular vector of a positive matrix "
                        "must be positive");
      alloc.c[j] = 1.0 / t.v[j];
    }
  }

  for (double v : alloc.r)
    HG_INTERNAL_CHECK(v > 0.0, "nonpositive row share from SVD");
  for (double v : alloc.c)
    HG_INTERNAL_CHECK(v > 0.0, "nonpositive column share from SVD");
  return alloc;
}

HeuristicStep make_step(CycleTimeGrid grid, bool approximate_inverse) {
  HeuristicStep step{std::move(grid), {}, 0.0, 0.0};
  step.alloc = raw_svd_shares(step.grid, approximate_inverse);
  normalize_tight(step.grid, step.alloc);
  step.obj2 = obj2_value(step.alloc);
  step.avg_workload = average_workload(step.grid, step.alloc);
  return step;
}

// Re-arranges the grid's cycle-times into the rank order of the ideal
// rank-1 matrix T_opt = (1/(r_i c_j)) (paper Section 4.4.3): the k-th
// smallest real cycle-time goes to the position holding the k-th smallest
// T_opt entry. Ties broken by position index so the map is deterministic.
CycleTimeGrid rearrange_by_ideal(const CycleTimeGrid& grid,
                                 const GridAllocation& alloc) {
  const std::size_t p = grid.rows(), q = grid.cols();
  const std::size_t n = p * q;

  std::vector<double> t_opt(n);
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < q; ++j)
      t_opt[i * q + j] = 1.0 / (alloc.r[i] * alloc.c[j]);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return t_opt[a] < t_opt[b];
  });

  std::vector<double> sorted_times = grid.row_major();
  std::sort(sorted_times.begin(), sorted_times.end());

  std::vector<double> rearranged(n);
  for (std::size_t k = 0; k < n; ++k) rearranged[order[k]] = sorted_times[k];
  return CycleTimeGrid(p, q, std::move(rearranged));
}

}  // namespace

GridAllocation heuristic_allocation(const CycleTimeGrid& grid,
                                    bool approximate_inverse) {
  GridAllocation alloc = raw_svd_shares(grid, approximate_inverse);
  normalize_tight(grid, alloc);
  return alloc;
}

HeuristicResult refine_from(const CycleTimeGrid& start,
                            const HeuristicOptions& opts) {
  HG_CHECK(opts.max_steps >= 1, "max_steps must be at least 1");
  HeuristicResult res;
  res.steps.push_back(make_step(start, opts.approximate_inverse));

  for (int step = 1; step < opts.max_steps; ++step) {
    const HeuristicStep& cur = res.steps.back();
    CycleTimeGrid next = rearrange_by_ideal(cur.grid, cur.alloc);
    if (next.row_major() == cur.grid.row_major()) {
      res.converged = true;
      return res;
    }
    // Detect 2-cycles (arrangement flips back and forth): treat as
    // converged at the better of the two states.
    if (res.steps.size() >= 2 &&
        next.row_major() == res.steps[res.steps.size() - 2].grid.row_major()) {
      res.converged = true;
      if (res.steps[res.steps.size() - 2].obj2 > cur.obj2) {
        res.steps.push_back(res.steps[res.steps.size() - 2]);
      }
      return res;
    }
    res.steps.push_back(make_step(std::move(next), opts.approximate_inverse));
  }
  // Hit the cap; converged stays false. The iteration is not monotone in
  // Obj2, so the last step may be worse than an earlier one — repeat the
  // best step at the end so final() is the best state seen, matching what
  // the 2-cycle exit above guarantees.
  std::size_t best_idx = 0;
  for (std::size_t k = 1; k < res.steps.size(); ++k)
    if (res.steps[k].obj2 > res.steps[best_idx].obj2) best_idx = k;
  if (best_idx != res.steps.size() - 1)
    res.steps.push_back(res.steps[best_idx]);
  return res;
}

HeuristicResult solve_heuristic(std::size_t p, std::size_t q,
                                std::vector<double> pool,
                                const HeuristicOptions& opts) {
  return refine_from(CycleTimeGrid::sorted_row_major(p, q, std::move(pool)),
                     opts);
}

}  // namespace hetgrid
