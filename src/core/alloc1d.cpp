#include "core/alloc1d.hpp"

#include <queue>
#include <tuple>

#include "util/check.hpp"

namespace hetgrid {

Alloc1dResult allocate_1d(const std::vector<double>& cycle_times,
                          std::size_t slots) {
  HG_CHECK(!cycle_times.empty(), "allocate_1d needs at least one processor");
  for (double t : cycle_times)
    HG_CHECK(t > 0.0, "cycle-times must be positive, got " << t);

  Alloc1dResult res;
  res.counts.assign(cycle_times.size(), 0);
  res.order.reserve(slots);

  // Min-heap keyed by (finish time if given one more slot, index).
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t i = 0; i < cycle_times.size(); ++i)
    heap.emplace(cycle_times[i], i);

  for (std::size_t k = 0; k < slots; ++k) {
    auto [finish, i] = heap.top();
    heap.pop();
    res.order.push_back(i);
    res.counts[i] += 1;
    res.makespan = std::max(res.makespan, finish);
    heap.emplace(static_cast<double>(res.counts[i] + 1) * cycle_times[i], i);
  }
  return res;
}

std::vector<double> proportional_shares(
    const std::vector<double>& cycle_times) {
  HG_CHECK(!cycle_times.empty(), "empty processor list");
  double cap = 0.0;
  for (double t : cycle_times) {
    HG_CHECK(t > 0.0, "cycle-times must be positive, got " << t);
    cap += 1.0 / t;
  }
  std::vector<double> shares(cycle_times.size());
  for (std::size_t i = 0; i < shares.size(); ++i)
    shares[i] = (1.0 / cycle_times[i]) / cap;
  return shares;
}

double aggregate_cycle_time(const std::vector<double>& cycle_times) {
  HG_CHECK(!cycle_times.empty(), "empty processor list");
  double cap = 0.0;
  for (double t : cycle_times) {
    HG_CHECK(t > 0.0, "cycle-times must be positive, got " << t);
    cap += 1.0 / t;
  }
  return 1.0 / cap;
}

}  // namespace hetgrid
