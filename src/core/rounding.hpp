// Converting the solvers' rational shares into integer block counts.
//
// The optimization is solved over rationals with sum r_i = sum c_j = 1
// (Section 4.1); scaling by the matrix size N and rounding must preserve
// the sums exactly — each grid row must account for exactly N matrix rows —
// so we use the largest-remainder method (each count is within one unit of
// its exact scaled share).
#pragma once

#include <cstddef>
#include <vector>

namespace hetgrid {

/// Rounds `shares` (nonnegative, not necessarily normalized) to integers
/// summing to `total`, proportionally: n_i = round(total * share_i / sum)
/// adjusted by largest remainder. Guarantees |n_i - exact_i| < 1 and
/// sum n_i == total.
std::vector<std::size_t> round_to_sum(const std::vector<double>& shares,
                                      std::size_t total);

/// Same, but guarantees every share that is strictly positive receives at
/// least one unit (needed when every processor row/column must own at least
/// one block of the panel). Requires total >= number of positive shares.
std::vector<std::size_t> round_to_sum_positive(
    const std::vector<double>& shares, std::size_t total);

}  // namespace hetgrid
