#include "core/rounding.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace hetgrid {

namespace {

std::vector<std::size_t> largest_remainder(const std::vector<double>& shares,
                                           std::size_t total,
                                           std::size_t min_each_positive) {
  HG_CHECK(!shares.empty(), "round_to_sum of empty shares");
  double sum = 0.0;
  std::size_t positive = 0;
  for (double s : shares) {
    HG_CHECK(s >= 0.0, "shares must be nonnegative, got " << s);
    sum += s;
    if (s > 0.0) ++positive;
  }
  HG_CHECK(sum > 0.0, "shares must not all be zero");
  if (min_each_positive > 0)
    HG_CHECK(total >= positive * min_each_positive,
             "total " << total << " too small for " << positive
                      << " positive shares");

  const std::size_t n = shares.size();
  std::vector<std::size_t> counts(n, 0);
  std::vector<double> exact(n, 0.0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    exact[i] = static_cast<double>(total) * shares[i] / sum;
    counts[i] = static_cast<std::size_t>(std::floor(exact[i]));
    if (shares[i] > 0.0 && counts[i] < min_each_positive)
      counts[i] = min_each_positive;
    assigned += counts[i];
  }

  if (assigned < total) {
    // Hand out the remaining units by largest deficit exact[i] - counts[i]
    // (ties: lower index). The deficit equals the fractional remainder for
    // entries that took floor(exact[i]), but is smaller — possibly negative
    // — for entries bumped up to min_each_positive; ranking by the raw
    // fractional part would let a bumped entry (already over its exact
    // share) grab another unit ahead of entries still short of theirs.
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a,
                                                 std::size_t b) {
      const double ra = exact[a] - static_cast<double>(counts[a]);
      const double rb = exact[b] - static_cast<double>(counts[b]);
      return ra > rb;
    });
    std::size_t k = 0;
    while (assigned < total) {
      counts[idx[k % n]] += 1;
      ++assigned;
      ++k;
    }
  } else if (assigned > total) {
    // Only possible via the min_each_positive bump: take back units from
    // the entries with the largest over-allocation counts[i] - exact[i]
    // while respecting the minimum.
    while (assigned > total) {
      std::size_t victim = n;  // invalid
      double worst = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t floor_allowed =
            shares[i] > 0.0 ? min_each_positive : 0;
        if (counts[i] <= floor_allowed) continue;
        const double over = static_cast<double>(counts[i]) - exact[i];
        if (over > worst) {
          worst = over;
          victim = i;
        }
      }
      HG_INTERNAL_CHECK(victim < n, "cannot rebalance rounded counts");
      counts[victim] -= 1;
      --assigned;
    }
  }
  return counts;
}

}  // namespace

std::vector<std::size_t> round_to_sum(const std::vector<double>& shares,
                                      std::size_t total) {
  return largest_remainder(shares, total, 0);
}

std::vector<std::size_t> round_to_sum_positive(
    const std::vector<double>& shares, std::size_t total) {
  return largest_remainder(shares, total, 1);
}

}  // namespace hetgrid
