#include "core/exact2x2.hpp"

#include <cmath>

namespace hetgrid {

Exact2x2Solution solve_exact_2x2(const CycleTimeGrid& grid) {
  HG_CHECK(grid.rows() == 2 && grid.cols() == 2,
           "solve_exact_2x2 needs a 2x2 grid");
  const double t11 = grid(0, 0), t12 = grid(0, 1);
  const double t21 = grid(1, 0), t22 = grid(1, 1);

  // Candidate per dropped edge (i,j): the other three constraints are
  // equalities; propagate from r1 = 1 and verify the dropped one.
  struct Candidate {
    double r2, c1, c2;
    int dropped;
  };
  const Candidate candidates[] = {
      // drop (1,1): c1 from (2,1), r2 from (2,2) via c2 from (1,2).
      {t12 / t22, 1.0 / ((t12 / t22) * t21), 1.0 / t12, 0},
      // drop (1,2): c1 from (1,1), r2 from (2,1), c2 from (2,2).
      {t11 / t21, 1.0 / t11, t21 / (t11 * t22), 1},
      // drop (2,1): c1 from (1,1), c2 from (1,2), r2 from (2,2).
      {t12 / t22, 1.0 / t11, 1.0 / t12, 2},
      // drop (2,2): c1 from (1,1), c2 from (1,2), r2 from (2,1).
      {t11 / t21, 1.0 / t11, 1.0 / t12, 3},
  };

  Exact2x2Solution best;
  best.obj2 = 0.0;
  for (const Candidate& cand : candidates) {
    const double r1 = 1.0;
    // Feasibility of the dropped constraint (the other three are tight by
    // construction; tolerate roundoff).
    const double checks[4] = {r1 * t11 * cand.c1, r1 * t12 * cand.c2,
                              cand.r2 * t21 * cand.c1,
                              cand.r2 * t22 * cand.c2};
    bool ok = true;
    for (double v : checks)
      if (v > 1.0 + 1e-12) ok = false;
    if (!ok) continue;
    const double value = (r1 + cand.r2) * (cand.c1 + cand.c2);
    if (value > best.obj2) {
      best.obj2 = value;
      best.alloc.r = {r1, cand.r2};
      best.alloc.c = {cand.c1, cand.c2};
      best.slack_constraint =
          checks[cand.dropped] < 1.0 - 1e-12 ? cand.dropped : 4;
    }
  }
  HG_INTERNAL_CHECK(best.obj2 > 0.0,
                    "no acceptable 2x2 candidate; at least one tree point "
                    "must be feasible");
  return best;
}

}  // namespace hetgrid
