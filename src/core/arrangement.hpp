// Arrangement search: which processor goes where on the grid.
//
// Theorem 1 of the paper states an optimal arrangement exists among the
// *non-decreasing* ones (cycle-times non-decreasing along every row and
// every column), so the exhaustive optimal search only enumerates those —
// they are exactly the (semi-standard) Young-tableau-like fillings of the
// p x q rectangle with the processor multiset.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/cycle_time_grid.hpp"
#include "core/exact_solver.hpp"

namespace hetgrid {

/// Invokes `visit` for every distinct non-decreasing arrangement of `pool`
/// on a p x q grid; returns the number visited. Arrangements that coincide
/// as value grids (possible when the pool has repeated cycle-times) are
/// visited once. If `visit` returns false, enumeration stops early.
std::uint64_t enumerate_nondecreasing_arrangements(
    std::size_t p, std::size_t q, std::vector<double> pool,
    const std::function<bool(const CycleTimeGrid&)>& visit);

/// Invokes `visit` for every distinct arrangement (any order), for
/// brute-force validation of Theorem 1 on small grids. Returns the count.
std::uint64_t enumerate_all_arrangements(
    std::size_t p, std::size_t q, std::vector<double> pool,
    const std::function<bool(const CycleTimeGrid&)>& visit);

/// Globally optimal solution of the 2D load-balancing problem: exact solver
/// on every non-decreasing arrangement. Doubly exponential; for the small
/// grids where the paper's exact method applies.
struct OptimalArrangement {
  CycleTimeGrid grid;
  ExactSolution solution;
  std::uint64_t arrangements_tried = 0;
};

/// `opts` is forwarded to every per-arrangement solve_exact call (e.g. to
/// parallelize the inner tree searches or raise the tree cap).
OptimalArrangement solve_optimal_arrangement(std::size_t p, std::size_t q,
                                             std::vector<double> pool,
                                             const ExactSolverOptions& opts);

OptimalArrangement solve_optimal_arrangement(std::size_t p, std::size_t q,
                                             std::vector<double> pool);

}  // namespace hetgrid
