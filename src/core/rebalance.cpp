#include "core/rebalance.hpp"

#include <algorithm>
#include <cmath>

#include "core/exact_solver.hpp"
#include "core/heuristic.hpp"
#include "core/rounding.hpp"
#include "util/check.hpp"

namespace hetgrid {

namespace {

std::vector<std::size_t> multiplicities(const std::vector<std::size_t>& map,
                                        std::size_t lines) {
  std::vector<std::size_t> cnt(lines, 0);
  for (std::size_t s : map) {
    HG_CHECK(s < lines, "slot map entry out of range");
    ++cnt[s];
  }
  return cnt;
}

// Rewrites `map` so line l owns exactly want[l] slots while moving as few
// slots as possible: surplus lines free their highest-index slots, and the
// freed positions (ascending) are granted round-robin over the deficit
// lines in ascending line order. Deterministic; the number of reassigned
// slots is half the L1 distance between the multiplicity vectors.
std::vector<std::size_t> remap_slots(const std::vector<std::size_t>& map,
                                     const std::vector<std::size_t>& want,
                                     std::size_t* changed) {
  std::vector<std::size_t> have = multiplicities(map, want.size());
  std::vector<std::size_t> out = map;
  std::vector<std::size_t> freed;
  for (std::size_t i = map.size(); i-- > 0;) {
    const std::size_t line = map[i];
    if (have[line] > want[line]) {
      freed.push_back(i);
      --have[line];
    }
  }
  std::sort(freed.begin(), freed.end());
  std::size_t cursor = 0;
  for (std::size_t pos : freed) {
    while (have[cursor % want.size()] >= want[cursor % want.size()]) ++cursor;
    const std::size_t line = cursor % want.size();
    out[pos] = line;
    ++have[line];
    ++cursor;  // round-robin: next deficit line gets the next freed slot
  }
  *changed = freed.size();
  return out;
}

// Predicted duration of one sweep over the region: the busiest processor's
// block count times its estimated per-block rate.
double region_sweep(const CycleTimeGrid& rates,
                    const std::vector<std::size_t>& row_map,
                    const std::vector<std::size_t>& col_map,
                    const RebalanceRegion& reg) {
  const std::size_t q = rates.cols();
  std::vector<double> cnt(rates.rows() * q, 0.0);
  for (std::size_t bi = reg.row_lo; bi < reg.row_hi; ++bi) {
    const std::size_t gi = row_map[bi % row_map.size()];
    for (std::size_t bj = reg.col_lo; bj < reg.col_hi; ++bj) {
      if (reg.lower_only && bj > bi) continue;
      cnt[gi * q + col_map[bj % col_map.size()]] += 1.0;
    }
  }
  double sweep = 0.0;
  for (std::size_t i = 0; i < rates.rows(); ++i)
    for (std::size_t j = 0; j < q; ++j)
      sweep = std::max(sweep, cnt[i * q + j] * rates(i, j));
  return sweep;
}

// Region blocks whose (grid row, grid col) owner pair differs between the
// current and the proposed maps — the migration bill, pre-multiplier.
std::size_t moved_blocks(const std::vector<std::size_t>& cur_r,
                         const std::vector<std::size_t>& cur_c,
                         const std::vector<std::size_t>& new_r,
                         const std::vector<std::size_t>& new_c,
                         const RebalanceRegion& reg) {
  std::size_t moved = 0;
  for (std::size_t bi = reg.row_lo; bi < reg.row_hi; ++bi) {
    const bool row_same = cur_r[bi % cur_r.size()] == new_r[bi % new_r.size()];
    for (std::size_t bj = reg.col_lo; bj < reg.col_hi; ++bj) {
      if (reg.lower_only && bj > bi) continue;
      if (!row_same || cur_c[bj % cur_c.size()] != new_c[bj % new_c.size()])
        ++moved;
    }
  }
  return moved;
}

}  // namespace

RebalanceDecision plan_rebalance(const CycleTimeGrid& rates,
                                 const std::vector<std::size_t>& row_map,
                                 const std::vector<std::size_t>& col_map,
                                 const RebalanceRegion& region,
                                 const RebalanceOptions& opt) {
  HG_CHECK(!row_map.empty() && !col_map.empty(),
           "plan_rebalance needs non-empty slot maps");
  HG_CHECK(region.row_hi >= region.row_lo && region.col_hi >= region.col_lo,
           "plan_rebalance region is inverted");

  RebalanceDecision d;
  d.current_sweep = region_sweep(rates, row_map, col_map, region);

  GridAllocation alloc = heuristic_allocation(rates);
  if (opt.exact_budget > 0 &&
      exact_solver_cost(rates.rows(), rates.cols()) <= opt.exact_budget) {
    const ExactSolution ex = solve_exact(rates, ExactSolverOptions{});
    if (obj2_value(ex.alloc) > obj2_value(alloc)) {
      alloc = ex.alloc;
      d.exact = true;
    }
  }

  const std::vector<std::size_t> want_r =
      round_to_sum_positive(alloc.r, row_map.size());
  const std::vector<std::size_t> want_c =
      round_to_sum_positive(alloc.c, col_map.size());
  d.row_map = remap_slots(row_map, want_r, &d.row_slots_changed);
  d.col_map = remap_slots(col_map, want_c, &d.col_slots_changed);

  d.proposed_sweep = region_sweep(rates, d.row_map, d.col_map, region);
  const std::size_t moved =
      moved_blocks(row_map, col_map, d.row_map, d.col_map, region);
  d.blocks_to_move = static_cast<std::size_t>(
      std::llround(static_cast<double>(moved) * region.block_multiplier));
  d.migration_cost =
      static_cast<double>(d.blocks_to_move) * region.per_block_move_cost;
  d.predicted_gain =
      (d.current_sweep - d.proposed_sweep) * region.remaining_sweeps;

  d.act = (d.row_slots_changed + d.col_slots_changed) > 0 &&
          d.proposed_sweep < (1.0 - opt.min_gain) * d.current_sweep &&
          d.predicted_gain > opt.cost_threshold * d.migration_cost;
  return d;
}

CycleTimeGrid estimated_rate_grid(const std::vector<CycleEstimate>& estimates,
                                  const CycleTimeGrid& fallback, ObsOp op,
                                  std::uint64_t min_samples) {
  std::vector<double> t(fallback.rows() * fallback.cols());
  for (std::size_t i = 0; i < fallback.rows(); ++i)
    for (std::size_t j = 0; j < fallback.cols(); ++j)
      t[i * fallback.cols() + j] = fallback(i, j);
  for (const CycleEstimate& e : estimates) {
    if (e.op != op || e.samples < min_samples || e.proc >= t.size()) continue;
    if (e.seconds_per_unit > 0.0) t[e.proc] = e.seconds_per_unit;
  }
  return CycleTimeGrid(fallback.rows(), fallback.cols(), t);
}

}  // namespace hetgrid
