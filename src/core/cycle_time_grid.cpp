#include "core/cycle_time_grid.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace hetgrid {

CycleTimeGrid::CycleTimeGrid(std::size_t p, std::size_t q,
                             std::vector<double> row_major)
    : p_(p), q_(q), t_(std::move(row_major)) {
  HG_CHECK(p > 0 && q > 0, "grid dimensions must be positive");
  HG_CHECK(t_.size() == p * q,
           "expected " << p * q << " cycle-times, got " << t_.size());
  for (double v : t_)
    HG_CHECK(v > 0.0 && std::isfinite(v),
             "cycle-times must be positive and finite, got " << v);
}

CycleTimeGrid CycleTimeGrid::from_arrangement(
    std::size_t p, std::size_t q, const std::vector<double>& pool,
    const std::vector<std::size_t>& perm) {
  HG_CHECK(pool.size() == p * q,
           "pool size " << pool.size() << " != " << p * q);
  HG_CHECK(perm.size() == p * q, "perm size mismatch");
  std::vector<bool> seen(perm.size(), false);
  std::vector<double> t(perm.size());
  for (std::size_t pos = 0; pos < perm.size(); ++pos) {
    HG_CHECK(perm[pos] < pool.size() && !seen[perm[pos]],
             "perm is not a permutation");
    seen[perm[pos]] = true;
    t[pos] = pool[perm[pos]];
  }
  return CycleTimeGrid(p, q, std::move(t));
}

CycleTimeGrid CycleTimeGrid::sorted_row_major(std::size_t p, std::size_t q,
                                              std::vector<double> pool) {
  std::sort(pool.begin(), pool.end());
  return CycleTimeGrid(p, q, std::move(pool));
}

bool CycleTimeGrid::is_non_decreasing() const {
  for (std::size_t i = 0; i < p_; ++i)
    for (std::size_t j = 0; j + 1 < q_; ++j)
      if ((*this)(i, j) > (*this)(i, j + 1)) return false;
  for (std::size_t j = 0; j < q_; ++j)
    for (std::size_t i = 0; i + 1 < p_; ++i)
      if ((*this)(i, j) > (*this)(i + 1, j)) return false;
  return true;
}

bool CycleTimeGrid::is_rank_one(double tol) const {
  // All 2x2 minors against the first row/column vanish iff rank <= 1.
  for (std::size_t i = 1; i < p_; ++i)
    for (std::size_t j = 1; j < q_; ++j) {
      const double det =
          (*this)(0, 0) * (*this)(i, j) - (*this)(0, j) * (*this)(i, 0);
      const double scale = std::abs((*this)(0, 0) * (*this)(i, j)) +
                           std::abs((*this)(0, j) * (*this)(i, 0));
      if (std::abs(det) > tol * scale) return false;
    }
  return true;
}

std::vector<double> CycleTimeGrid::inverse_row_major() const {
  std::vector<double> inv(t_.size());
  for (std::size_t k = 0; k < t_.size(); ++k) inv[k] = 1.0 / t_[k];
  return inv;
}

double CycleTimeGrid::total_capacity() const {
  double acc = 0.0;
  for (double v : t_) acc += 1.0 / v;
  return acc;
}

std::string CycleTimeGrid::to_string(int precision) const {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision);
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = 0; j < q_; ++j)
      oss << (j == 0 ? "" : " ") << (*this)(i, j);
    oss << '\n';
  }
  return oss.str();
}

}  // namespace hetgrid
