// Exact solution of Obj2 for a *fixed* arrangement (paper Section 4.3.1).
//
// The optimum of  max (sum r)(sum c)  s.t.  r_i t_ij c_j <= 1  is attained
// at a point where the tight constraints connect all p + q variables, so it
// is realized by an *acceptable spanning tree* of K_{p,q}: fix r_1 = 1,
// propagate r_i t_ij c_j = 1 along tree edges, and keep the tree whose
// induced point satisfies all remaining inequalities with maximal value.
//
// The search is an iterative branch-and-bound over include/exclude
// decisions on the edges in row-major order (doc/exact_solver.md):
//  * one shared union-find with an undo log replaces the per-node copies of
//    the naive enumerator;
//  * each partial forest carries partially-propagated relative shares, from
//    which an admissible upper bound on Obj2 prunes provably dominated
//    subtrees, and intra-component constraint violations prune subtrees
//    that cannot yield an acceptable tree;
//  * the search splits deterministically on edge-inclusion prefixes into
//    tasks that a thread pool executes with per-task incumbents, merged in
//    prefix order with ties broken on tree edge order — so the result (and
//    every counter) is bit-identical for any thread count.
// Worst-case cost is Theta(#trees) = p^{q-1} q^{p-1}; pruning typically
// visits a tiny fraction of that.
#pragma once

#include <cstdint>
#include <vector>

#include "core/allocation.hpp"
#include "core/cycle_time_grid.hpp"
#include "graph/spanning_tree.hpp"

namespace hetgrid {

struct ExactSolverOptions {
  /// Guard against accidentally launching an infeasible search: solve_exact
  /// throws PreconditionError if Scoins' tree count exceeds this.
  std::uint64_t max_trees = 50'000'000;
  /// Worker threads for the prefix-split search; 0 means "all hardware
  /// threads". Results are bit-identical for every thread count.
  unsigned threads = 1;
  /// Branch-and-bound pruning (Obj2 upper bound + infeasible-subtree cuts).
  /// With pruning off the search degenerates to the exhaustive enumeration
  /// and trees_enumerated equals Scoins' count; the pruning-soundness tests
  /// rely on this switch.
  bool prune = true;
};

struct ExactSolution {
  GridAllocation alloc;
  double obj2 = 0.0;
  /// The acceptable spanning tree realizing `alloc` (edges in ascending
  /// row-major edge order).
  std::vector<BipartiteEdge> tree;
  /// Complete spanning trees actually evaluated (leaves the search reached;
  /// equals Scoins' count only when pruning is off).
  std::uint64_t trees_enumerated = 0;
  /// Evaluated trees whose propagated point satisfied every constraint.
  std::uint64_t trees_acceptable = 0;
  /// Search nodes expanded (include/exclude decision points).
  std::uint64_t nodes_visited = 0;
  /// Subtrees cut by the Obj2 bound or by an intra-component violation.
  std::uint64_t subtrees_pruned = 0;
};

/// Runs the branch-and-bound search. Throws PreconditionError if the number
/// of spanning trees exceeds `opts.max_trees`.
ExactSolution solve_exact(const CycleTimeGrid& grid,
                          const ExactSolverOptions& opts);

/// Serial single-threaded search with default options and the given cap.
ExactSolution solve_exact(const CycleTimeGrid& grid,
                          std::uint64_t max_trees = 50'000'000);

/// Propagates r_i t_ij c_j = 1 along `tree` starting from r[0] = 1 and
/// writes the induced point into `out`. Uses explicit known-flags per
/// variable (never a sentinel value, so a NaN cannot masquerade as
/// "known"). Returns false if the edges leave a variable unset, i.e. they
/// do not form a spanning tree of K_{p,q}.
bool propagate_tree(const CycleTimeGrid& grid,
                    const std::vector<BipartiteEdge>& tree,
                    GridAllocation& out);

/// Number of spanning trees solve_exact would search for a p x q grid.
std::uint64_t exact_solver_cost(std::size_t p, std::size_t q);

}  // namespace hetgrid
