// Exact solution of Obj2 for a *fixed* arrangement (paper Section 4.3.1).
//
// The optimum of  max (sum r)(sum c)  s.t.  r_i t_ij c_j <= 1  is attained
// at a point where the tight constraints connect all p + q variables, so it
// is realized by an *acceptable spanning tree* of K_{p,q}: fix r_1 = 1,
// propagate r_i t_ij c_j = 1 along tree edges, and keep the tree whose
// induced point satisfies all remaining inequalities with maximal value.
// Cost is Theta(#trees) = p^{q-1} q^{p-1}; intended for small grids.
#pragma once

#include <cstdint>

#include "core/allocation.hpp"
#include "core/cycle_time_grid.hpp"

namespace hetgrid {

struct ExactSolution {
  GridAllocation alloc;
  double obj2 = 0.0;
  std::uint64_t trees_enumerated = 0;
  std::uint64_t trees_acceptable = 0;
};

/// Runs the spanning-tree enumeration. Throws PreconditionError if the
/// number of spanning trees exceeds `max_trees` (guard against accidentally
/// launching an infeasible search).
ExactSolution solve_exact(const CycleTimeGrid& grid,
                          std::uint64_t max_trees = 50'000'000);

/// Number of spanning trees solve_exact would enumerate for a p x q grid.
std::uint64_t exact_solver_cost(std::size_t p, std::size_t q);

}  // namespace hetgrid
