#include "core/allocation.hpp"

#include <algorithm>
#include <cmath>

namespace hetgrid {

namespace {

void check_shapes(const CycleTimeGrid& grid, const GridAllocation& alloc) {
  HG_CHECK(alloc.shapes_match(grid),
           "allocation shape (" << alloc.r.size() << "," << alloc.c.size()
                                << ") does not match grid " << grid.rows()
                                << "x" << grid.cols());
}

}  // namespace

std::vector<double> workload_matrix(const CycleTimeGrid& grid,
                                    const GridAllocation& alloc) {
  check_shapes(grid, alloc);
  const std::size_t p = grid.rows(), q = grid.cols();
  std::vector<double> b(p * q);
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < q; ++j)
      b[i * q + j] = alloc.r[i] * grid(i, j) * alloc.c[j];
  return b;
}

double average_workload(const CycleTimeGrid& grid,
                        const GridAllocation& alloc) {
  const std::vector<double> b = workload_matrix(grid, alloc);
  double acc = 0.0;
  for (double v : b) acc += v;
  return acc / static_cast<double>(b.size());
}

double obj2_value(const GridAllocation& alloc) {
  double sr = 0.0, sc = 0.0;
  for (double v : alloc.r) sr += v;
  for (double v : alloc.c) sc += v;
  return sr * sc;
}

double obj1_value(const CycleTimeGrid& grid, const GridAllocation& alloc) {
  check_shapes(grid, alloc);
  double worst = 0.0;
  for (std::size_t i = 0; i < grid.rows(); ++i)
    for (std::size_t j = 0; j < grid.cols(); ++j)
      worst = std::max(worst, alloc.r[i] * grid(i, j) * alloc.c[j]);
  const double denom = obj2_value(alloc);
  HG_CHECK(denom > 0.0, "obj1 of a zero allocation");
  return worst / denom;
}

bool is_feasible(const CycleTimeGrid& grid, const GridAllocation& alloc,
                 double tol) {
  check_shapes(grid, alloc);
  for (std::size_t i = 0; i < grid.rows(); ++i)
    for (std::size_t j = 0; j < grid.cols(); ++j) {
      if (alloc.r[i] < 0.0 || alloc.c[j] < 0.0) return false;
      if (alloc.r[i] * grid(i, j) * alloc.c[j] > 1.0 + tol) return false;
    }
  return true;
}

bool is_tight(const CycleTimeGrid& grid, const GridAllocation& alloc,
              double tol) {
  if (!is_feasible(grid, alloc, tol)) return false;
  const std::size_t p = grid.rows(), q = grid.cols();
  const std::vector<double> b = workload_matrix(grid, alloc);
  for (std::size_t i = 0; i < p; ++i) {
    double best = 0.0;
    for (std::size_t j = 0; j < q; ++j) best = std::max(best, b[i * q + j]);
    if (best < 1.0 - tol) return false;
  }
  for (std::size_t j = 0; j < q; ++j) {
    double best = 0.0;
    for (std::size_t i = 0; i < p; ++i) best = std::max(best, b[i * q + j]);
    if (best < 1.0 - tol) return false;
  }
  return true;
}

void normalize_tight(const CycleTimeGrid& grid, GridAllocation& alloc) {
  check_shapes(grid, alloc);
  const std::size_t p = grid.rows(), q = grid.cols();
  for (double v : alloc.r)
    HG_CHECK(v > 0.0, "normalize_tight needs positive row shares, got " << v);
  for (double v : alloc.c)
    HG_CHECK(v > 0.0,
             "normalize_tight needs positive column shares, got " << v);

  // Pass 1: scale each column share so the column's busiest processor is
  // exactly fully busy (guarantees feasibility).
  for (std::size_t j = 0; j < q; ++j) {
    double col_max = 0.0;
    for (std::size_t i = 0; i < p; ++i)
      col_max = std::max(col_max, alloc.r[i] * grid(i, j) * alloc.c[j]);
    alloc.c[j] /= col_max;
  }
  // Pass 2: scale each row share up so the row's busiest processor is
  // exactly fully busy (removes idle headroom without breaking pass 1's
  // tight entries — those live in rows whose max is already 1).
  for (std::size_t i = 0; i < p; ++i) {
    double row_max = 0.0;
    for (std::size_t j = 0; j < q; ++j)
      row_max = std::max(row_max, alloc.r[i] * grid(i, j) * alloc.c[j]);
    alloc.r[i] /= row_max;
  }
}

double obj2_upper_bound(const CycleTimeGrid& grid) {
  return grid.total_capacity();
}

}  // namespace hetgrid
