// The polynomial heuristic of paper Section 4.4: arrangement by sorting,
// allocation by rank-1 SVD approximation of T^inv, and iterative refinement
// of the arrangement.
//
// One step:
//   1. arrange the processor cycle-times in the grid (first step: sorted
//      row-major, Section 4.4.1),
//   2. take the dominant singular triplet s, a, b of T^inv = (1/t_ij) and
//      set r_i = s*a_i, c_j = b_j (best l2 rank-1 approximation,
//      Section 4.4.2),
//   3. tight-normalize so all constraints hold and no processor row/column
//      has slack,
//   4. refinement (Section 4.4.3): the "ideal" cycle-times for this
//      allocation are T_opt = (1/(r_i c_j)), a rank-1 matrix; re-sort the
//      real cycle-times into the rank order of T_opt and repeat until the
//      arrangement stops changing.
#pragma once

#include <vector>

#include "core/allocation.hpp"
#include "core/cycle_time_grid.hpp"

namespace hetgrid {

struct HeuristicOptions {
  /// Max refinement steps before giving up on a fixed point. The paper
  /// observes convergence after a few steps; the cap also breaks the rare
  /// 2-cycle oscillation.
  int max_steps = 200;
  /// If false, rank-1-approximate T itself instead of T^inv (the paper
  /// argues T^inv is better because the l2 fit favours the *fast*
  /// processors; this switch feeds the ablation benchmark).
  bool approximate_inverse = true;
};

/// One refinement step's full state, kept for the figure harnesses.
struct HeuristicStep {
  CycleTimeGrid grid;          // arrangement used this step
  GridAllocation alloc;        // tight-normalized allocation for it
  double obj2 = 0.0;           // (sum r)(sum c)
  double avg_workload = 0.0;   // mean of B = (r_i t_ij c_j)
};

struct HeuristicResult {
  std::vector<HeuristicStep> steps;  // at least one
  bool converged = false;            // arrangement reached a fixed point

  const HeuristicStep& first() const { return steps.front(); }
  const HeuristicStep& final() const { return steps.back(); }
  /// Number of allocation steps performed (paper Fig 8 metric).
  int iterations() const { return static_cast<int>(steps.size()); }
  /// Fig 7 metric: obj2(converged) / obj2(first step) - 1.
  double refinement_gain() const {
    return final().obj2 / first().obj2 - 1.0;
  }
};

/// Allocation for a *fixed* arrangement by rank-1 SVD approximation +
/// tight normalization (steps 2–3 only; no re-arrangement).
GridAllocation heuristic_allocation(const CycleTimeGrid& grid,
                                    bool approximate_inverse = true);

/// Full heuristic on a pool of n = p*q cycle-times: sorted row-major
/// arrangement, then allocation + refinement until fixed point or
/// opts.max_steps.
HeuristicResult solve_heuristic(std::size_t p, std::size_t q,
                                std::vector<double> pool,
                                const HeuristicOptions& opts = {});

/// Refinement from a caller-chosen starting arrangement (used by tests and
/// by the ablation on initial arrangements).
HeuristicResult refine_from(const CycleTimeGrid& start,
                            const HeuristicOptions& opts = {});

}  // namespace hetgrid
