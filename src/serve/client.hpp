// Minimal blocking client for the placement service: connect, send one
// length-prefixed request frame, read one response frame, decode. Used by
// `hetgrid query` and the socket round-trip tests; everything heavier
// (loopback, batching) talks to PlacementServer directly.
#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"

namespace hetgrid::serve {

/// Where a server listens. Exactly one of `unix_path` (non-empty) or
/// host:port is used.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string unix_path;  // non-empty selects the unix-domain transport
};

/// Connects to `ep`. Returns the connected fd; throws PreconditionError on
/// failure. Caller closes.
int connect_endpoint(const Endpoint& ep);

/// One request/response round trip over a fresh connection. Returns the
/// decoded reply (a kResponse or a server-sent kError); throws
/// PreconditionError on connect/transport failures.
Decoded query_server(const Endpoint& ep, const PlacementRequest& req);

/// Round trip on an already-connected fd (for clients reusing a
/// connection across requests).
Decoded query_fd(int fd, const PlacementRequest& req);

/// Introspection round trip: sends a kStatsRequest, returns the decoded
/// kStatsResponse (or kError from a server that predates kStats —
/// WireError::kBadType means "no stats support", not a failure).
Decoded query_stats(const Endpoint& ep);
Decoded query_stats_fd(int fd);

}  // namespace hetgrid::serve
