#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.hpp"

namespace hetgrid::serve {

int connect_endpoint(const Endpoint& ep) {
  if (!ep.unix_path.empty()) {
    sockaddr_un addr{};
    HG_CHECK(ep.unix_path.size() < sizeof addr.sun_path,
             "unix socket path too long: " << ep.unix_path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    HG_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      const int err = errno;
      ::close(fd);
      HG_CHECK(false, "cannot connect to " << ep.unix_path << ": "
                                           << std::strerror(err));
    }
    return fd;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  HG_CHECK(::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) == 1,
           "not an IPv4 address: " << ep.host);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HG_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    HG_CHECK(false, "cannot connect to " << ep.host << ":" << ep.port << ": "
                                         << std::strerror(err));
  }
  return fd;
}

Decoded query_fd(int fd, const PlacementRequest& req) {
  write_frame(fd, encode_request(req));
  std::vector<std::uint8_t> payload;
  HG_CHECK(read_frame(fd, payload), "server closed before replying");
  return decode_payload(payload);
}

Decoded query_server(const Endpoint& ep, const PlacementRequest& req) {
  const int fd = connect_endpoint(ep);
  try {
    Decoded out = query_fd(fd, req);
    ::close(fd);
    return out;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

Decoded query_stats_fd(int fd) {
  write_frame(fd, encode_stats_request());
  std::vector<std::uint8_t> payload;
  HG_CHECK(read_frame(fd, payload), "server closed before replying");
  return decode_payload(payload);
}

Decoded query_stats(const Endpoint& ep) {
  const int fd = connect_endpoint(ep);
  try {
    Decoded out = query_stats_fd(fd);
    ::close(fd);
    return out;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

}  // namespace hetgrid::serve
