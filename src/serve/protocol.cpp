#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "util/check.hpp"

namespace hetgrid::serve {

namespace {

// Little-endian byte writers/readers. The wire format is defined as LE
// regardless of host order; on the LE hosts we target these compile to
// plain loads/stores.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int s = 0; s < 32; s += 8)
    out.push_back(static_cast<std::uint8_t>(v >> s));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int s = 0; s < 64; s += 8)
    out.push_back(static_cast<std::uint8_t>(v >> s));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

// Cursor over a payload; every get_ checks bounds and flags underrun.
struct Reader {
  const std::uint8_t* data;
  std::size_t len;
  std::size_t pos = 0;
  bool underrun = false;

  bool need(std::size_t n) {
    if (len - pos < n) {
      underrun = true;
      pos = len;
      return false;
    }
    return true;
  }
  std::uint8_t get_u8() {
    if (!need(1)) return 0;
    return data[pos++];
  }
  std::uint16_t get_u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data[pos]) |
                      static_cast<std::uint16_t>(data[pos + 1]) << 8;
    pos += 2;
    return v;
  }
  std::uint32_t get_u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t get_u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
};

void put_header(std::vector<std::uint8_t>& out, MsgType type) {
  put_u32(out, kMagic);
  put_u16(out, kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);  // reserved
}

Decoded parse_failure(WireError code) {
  Decoded d;
  d.parse_error = code;
  return d;
}

}  // namespace

const char* wire_error_name(WireError e) {
  switch (e) {
    case WireError::kOk: return "ok";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kBadFrame: return "bad-frame";
    case WireError::kBadType: return "bad-type";
    case WireError::kBadDimensions: return "bad-dimensions";
    case WireError::kBadCycleTime: return "bad-cycle-time";
    case WireError::kBadMode: return "bad-mode";
    case WireError::kDeadlineExceeded: return "deadline-exceeded";
    case WireError::kShutdown: return "shutdown";
    case WireError::kTooCostly: return "too-costly";
    case WireError::kInternal: return "internal";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_request(const PlacementRequest& req) {
  HG_CHECK(req.times.size() ==
               static_cast<std::size_t>(req.p) * static_cast<std::size_t>(req.q),
           "request times size " << req.times.size() << " != p*q");
  std::vector<std::uint8_t> out;
  out.reserve(24 + 8 * req.times.size());
  put_header(out, MsgType::kRequest);
  put_u16(out, req.p);
  put_u16(out, req.q);
  out.push_back(static_cast<std::uint8_t>(req.mode));
  out.push_back(0);  // reserved
  out.push_back(0);
  out.push_back(0);
  put_u64(out, req.deadline_us);
  for (double t : req.times) put_f64(out, t);
  return out;
}

std::vector<std::uint8_t> encode_response(const PlacementResponse& rsp) {
  const std::size_t n =
      static_cast<std::size_t>(rsp.p) * static_cast<std::size_t>(rsp.q);
  HG_CHECK(rsp.r.size() == rsp.p && rsp.c.size() == rsp.q &&
               rsp.perm.size() == n,
           "response shares/perm sizes do not match p x q");
  std::vector<std::uint8_t> out;
  out.reserve(24 + 8 * (rsp.r.size() + rsp.c.size()) + 4 * n);
  put_header(out, MsgType::kResponse);
  put_u16(out, rsp.p);
  put_u16(out, rsp.q);
  out.push_back(static_cast<std::uint8_t>(rsp.solver));
  out.push_back(static_cast<std::uint8_t>(rsp.cache_state));
  out.push_back(0);  // reserved
  out.push_back(0);
  put_f64(out, rsp.objective);
  for (double v : rsp.r) put_f64(out, v);
  for (double v : rsp.c) put_f64(out, v);
  for (std::uint32_t v : rsp.perm) put_u32(out, v);
  return out;
}

std::vector<std::uint8_t> encode_error(WireError code,
                                       const std::string& detail) {
  HG_CHECK(detail.size() <= 0xFFFF, "error detail too long");
  std::vector<std::uint8_t> out;
  out.reserve(12 + detail.size());
  put_header(out, MsgType::kError);
  put_u16(out, static_cast<std::uint16_t>(code));
  put_u16(out, static_cast<std::uint16_t>(detail.size()));
  out.insert(out.end(), detail.begin(), detail.end());
  return out;
}

std::vector<std::uint8_t> encode_stats_request() {
  std::vector<std::uint8_t> out;
  out.reserve(8);
  put_header(out, MsgType::kStatsRequest);
  return out;
}

std::vector<std::uint8_t> encode_stats(const StatsReply& stats) {
  HG_CHECK(stats.metrics_json.size() <= kMaxStatsMetricsBytes,
           "stats metrics JSON exceeds cap");
  HG_CHECK(stats.estimates.size() <= kMaxStatsEstimates,
           "stats estimate table exceeds cap");
  std::vector<std::uint8_t> out;
  out.reserve(32 + stats.metrics_json.size() + 28 * stats.estimates.size());
  put_header(out, MsgType::kStatsResponse);
  put_u64(out, stats.cache_entries);
  put_u32(out, stats.cache_shards);
  put_u32(out, stats.drift_events);
  put_u32(out, static_cast<std::uint32_t>(stats.metrics_json.size()));
  out.insert(out.end(), stats.metrics_json.begin(), stats.metrics_json.end());
  put_u32(out, static_cast<std::uint32_t>(stats.estimates.size()));
  for (const StatsReply::Estimate& e : stats.estimates) {
    put_u32(out, e.proc);
    out.push_back(e.op);
    out.push_back(0);  // reserved
    out.push_back(0);
    out.push_back(0);
    put_u64(out, e.samples);
    put_f64(out, e.estimate);
    put_f64(out, e.units);
  }
  return out;
}

Decoded decode_payload(const std::uint8_t* data, std::size_t len) {
  Reader r{data, len};
  if (len < 8) return parse_failure(WireError::kBadFrame);
  if (r.get_u32() != kMagic) return parse_failure(WireError::kBadMagic);
  const std::uint16_t version = r.get_u16();
  if (version == 0 || version > kProtocolVersion)
    return parse_failure(WireError::kBadVersion);
  const std::uint8_t type = r.get_u8();
  r.get_u8();  // reserved

  Decoded d;
  switch (type) {
    case static_cast<std::uint8_t>(MsgType::kRequest): {
      d.type = MsgType::kRequest;
      PlacementRequest& req = d.request;
      req.p = r.get_u16();
      req.q = r.get_u16();
      const std::uint8_t mode = r.get_u8();
      r.get_u8();
      r.get_u16();  // reserved
      if (mode > static_cast<std::uint8_t>(Mode::kHeuristic))
        return parse_failure(WireError::kBadMode);
      req.mode = static_cast<Mode>(mode);
      req.deadline_us = r.get_u64();
      if (req.p == 0 || req.q == 0 || req.p > kMaxGridSide ||
          req.q > kMaxGridSide)
        return parse_failure(WireError::kBadDimensions);
      const std::size_t n =
          static_cast<std::size_t>(req.p) * static_cast<std::size_t>(req.q);
      req.times.resize(n);
      for (std::size_t i = 0; i < n; ++i) req.times[i] = r.get_f64();
      break;
    }
    case static_cast<std::uint8_t>(MsgType::kResponse): {
      d.type = MsgType::kResponse;
      PlacementResponse& rsp = d.response;
      rsp.p = r.get_u16();
      rsp.q = r.get_u16();
      const std::uint8_t solver = r.get_u8();
      const std::uint8_t state = r.get_u8();
      r.get_u16();  // reserved
      if (solver != static_cast<std::uint8_t>(SolverKind::kExact) &&
          solver != static_cast<std::uint8_t>(SolverKind::kHeuristic))
        return parse_failure(WireError::kBadFrame);
      if (state > static_cast<std::uint8_t>(CacheState::kHitUpgraded))
        return parse_failure(WireError::kBadFrame);
      rsp.solver = static_cast<SolverKind>(solver);
      rsp.cache_state = static_cast<CacheState>(state);
      if (rsp.p == 0 || rsp.q == 0 || rsp.p > kMaxGridSide ||
          rsp.q > kMaxGridSide)
        return parse_failure(WireError::kBadDimensions);
      rsp.objective = r.get_f64();
      rsp.r.resize(rsp.p);
      for (double& v : rsp.r) v = r.get_f64();
      rsp.c.resize(rsp.q);
      for (double& v : rsp.c) v = r.get_f64();
      const std::size_t n =
          static_cast<std::size_t>(rsp.p) * static_cast<std::size_t>(rsp.q);
      rsp.perm.resize(n);
      for (std::uint32_t& v : rsp.perm) v = r.get_u32();
      break;
    }
    case static_cast<std::uint8_t>(MsgType::kError): {
      d.type = MsgType::kError;
      d.error.code = static_cast<WireError>(r.get_u16());
      const std::uint16_t detail_len = r.get_u16();
      if (!r.need(detail_len)) break;
      d.error.detail.assign(reinterpret_cast<const char*>(data + r.pos),
                            detail_len);
      r.pos += detail_len;
      break;
    }
    case static_cast<std::uint8_t>(MsgType::kStatsRequest): {
      d.type = MsgType::kStatsRequest;  // header-only body
      break;
    }
    case static_cast<std::uint8_t>(MsgType::kStatsResponse): {
      d.type = MsgType::kStatsResponse;
      StatsReply& s = d.stats;
      s.cache_entries = r.get_u64();
      s.cache_shards = r.get_u32();
      s.drift_events = r.get_u32();
      const std::uint32_t metrics_len = r.get_u32();
      if (metrics_len > kMaxStatsMetricsBytes || !r.need(metrics_len))
        return parse_failure(WireError::kBadFrame);
      s.metrics_json.assign(reinterpret_cast<const char*>(data + r.pos),
                            metrics_len);
      r.pos += metrics_len;
      const std::uint32_t n_est = r.get_u32();
      if (n_est > kMaxStatsEstimates || !r.need(28 * n_est))
        return parse_failure(WireError::kBadFrame);
      s.estimates.resize(n_est);
      for (StatsReply::Estimate& e : s.estimates) {
        e.proc = r.get_u32();
        e.op = r.get_u8();
        r.get_u8();  // reserved
        r.get_u16();
        e.samples = r.get_u64();
        e.estimate = r.get_f64();
        e.units = r.get_f64();
      }
      break;
    }
    default:
      return parse_failure(WireError::kBadType);
  }
  if (r.underrun || r.pos != len) return parse_failure(WireError::kBadFrame);
  return d;
}

std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload) {
  HG_CHECK(payload.size() <= kMaxPayload, "payload exceeds kMaxPayload");
  std::vector<std::uint8_t> out;
  out.reserve(4 + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

namespace {

// Reads exactly n bytes; returns false on EOF at offset 0, throws on
// mid-read EOF or error (a peer that dies mid-frame is a broken stream,
// not a clean close).
bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::read(fd, buf + got, n - got);
    if (k == 0) {
      HG_CHECK(got == 0, "connection closed mid-frame");
      return false;
    }
    if (k < 0) {
      if (errno == EINTR) continue;
      HG_CHECK(false, "read failed: " << std::strerror(errno));
    }
    got += static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t len_bytes[4];
  if (!read_exact(fd, len_bytes, 4)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(len_bytes[i]) << (8 * i);
  HG_CHECK(len <= kMaxPayload, "frame length " << len << " exceeds limit");
  payload.resize(len);
  if (len > 0)
    HG_CHECK(read_exact(fd, payload.data(), len),
             "connection closed mid-frame");
  return true;
}

void write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> bytes = frame(payload);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t k = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      HG_CHECK(false, "write failed: " << std::strerror(errno));
    }
    sent += static_cast<std::size_t>(k);
  }
}

}  // namespace hetgrid::serve
