// Canonicalizing solution cache for the placement service.
//
// The solvers behind the service (solve_optimal_arrangement,
// solve_heuristic) are functions of the *multiset* of cycle-times plus the
// grid shape: both begin by sorting the pool and searching arrangements,
// which Theorem 1 licenses — an optimal arrangement always exists among
// the non-decreasing ones, so the sorted pool is a canonical
// representative of every permutation of a request grid (row/column
// permutations included). Scale is the other degree of freedom: replacing
// t by alpha*t turns any optimal (r, c) into an optimal (r/alpha, c) with
// objective obj2/alpha, so scale-equivalent requests can also share one
// entry.
//
// The canonical key is therefore (p, q, sorted pool scaled to unit sum):
//   * the sum is accumulated over the *sorted* values, so it — and every
//     quotient t_k/sum — is bit-identical for any permutation of the
//     request;
//   * scale equivalence is exact whenever the scaled times are themselves
//     exact (integer grids under integer scalings, any grid under
//     power-of-two scalings): both sides then divide the same real
//     numbers and IEEE division rounds them to the same doubles. A
//     scaling that perturbs the times by rounding degrades to a harmless
//     cache miss, never to a wrong answer, because entries are matched by
//     the full key vector, not just its hash.
//
// Entries store the solution of the *raw sorted* pool (never a rescaled
// one), so a cold request is answered bit-identically to a direct solver
// call; scale-equivalent hits divide the stored shares by the scale ratio
// on the way out. Heuristic entries carry an upgrade path: an exact
// solution replaces them only if its (scale-normalized) objective is at
// least as good, so a client never observes the served objective getting
// worse (tests/test_serve.cpp).
//
// Concurrency: the table is split into power-of-two shards addressed by
// the top key-hash bits, each guarded by its own mutex (striped locking),
// so concurrent lookups of unrelated keys do not contend. Hit/miss/
// upgrade/insert counts feed obs/metrics under "serve.cache.*".
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace hetgrid::serve {

/// The canonical form of one request grid: shape, sorted pool, unit-sum
/// scaled key material, and the maps back to the caller's layout.
struct CanonicalPlacement {
  std::size_t p = 0;
  std::size_t q = 0;
  /// Raw cycle-times sorted ascending — what the solvers run on.
  std::vector<double> sorted;
  /// sorted[k] / scale: the permutation- and scale-invariant key material.
  std::vector<double> unit;
  /// Sum of the sorted values (accumulated ascending, so the same doubles
  /// in any request order produce the same bits).
  double scale = 0.0;
  /// sorted_to_request[k] = index into the request's row-major grid of the
  /// k-th smallest cycle-time (ties broken by request index, so the map is
  /// deterministic for duplicates).
  std::vector<std::uint32_t> sorted_to_request;
  /// splitmix64-chained hash of (p, q, unit bit patterns).
  std::uint64_t hash = 0;
};

/// Canonicalizes a request grid. Requires times.size() == p*q and every
/// entry positive and finite (the server validates first).
CanonicalPlacement canonicalize_placement(std::size_t p, std::size_t q,
                                          const std::vector<double>& times);

/// One cached solution, in canonical (sorted-pool) coordinates.
struct CachedSolution {
  std::size_t p = 0;
  std::size_t q = 0;
  std::vector<double> unit;  // full key material (matched exactly)
  double scale = 0.0;        // scale of the pool this entry was solved on
  bool exact = false;        // solver that produced r/c
  bool upgraded = false;     // a refinement replaced the original entry
  double obj2 = 0.0;         // objective for the raw sorted pool at `scale`
  std::vector<double> r;     // p row shares for `arrangement`
  std::vector<double> c;     // q column shares
  /// arrangement[i*q + j] = index into the sorted pool of the processor
  /// placed at slot (i, j) by the solver.
  std::vector<std::uint32_t> arrangement;

  /// Objective rescaled to the unit-sum grid — the scale-free quantity two
  /// entries for the same key are compared by.
  double unit_objective() const { return obj2 * scale; }
};

class SolutionCache {
 public:
  /// `shards` is rounded up to a power of two, minimum 1.
  explicit SolutionCache(std::size_t shards = 16);

  SolutionCache(const SolutionCache&) = delete;
  SolutionCache& operator=(const SolutionCache&) = delete;

  /// Returns a copy of the entry for `key` (copying keeps the shard lock
  /// scope tiny), or nullopt on miss. Counts serve.cache.hits / .misses.
  std::optional<CachedSolution> lookup(const CanonicalPlacement& key) const;

  /// Inserts `sol`, or upgrades the existing entry if `sol` is exact where
  /// the entry is heuristic (or strictly better on unit_objective). An
  /// upgrade never installs a worse unit_objective — the monotone-serving
  /// guarantee. Returns true if the table changed.
  bool insert_or_upgrade(CachedSolution sol);

  std::size_t size() const;
  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    // Open chaining on the full 64-bit hash; entries matched by key vector.
    std::vector<std::pair<std::uint64_t, CachedSolution>> entries;
  };

  const Shard& shard_for(std::uint64_t hash) const {
    return shards_[(hash >> 48) & (shards_.size() - 1)];
  }
  Shard& shard_for(std::uint64_t hash) {
    return shards_[(hash >> 48) & (shards_.size() - 1)];
  }

  std::vector<Shard> shards_;
};

/// True if the two solutions refer to the same canonical key.
bool same_key(const CachedSolution& entry, const CanonicalPlacement& key);

}  // namespace hetgrid::serve
