// The placement server: allocation-as-a-service over the paper's solvers.
//
// A PlacementServer answers PlacementRequests — "place my job on this
// p x q grid of cycle-times" — through a canonicalizing solution cache
// (serve/solution_cache.hpp). The solve path is:
//
//   request -> validate -> canonicalize -> cache lookup
//     hit:  rescale/re-permute the stored solution to the request's layout
//     miss: solve (exact or heuristic per mode/deadline), store, respond
//
// Degrade-then-refine: when the deadline or the exact-cost budget rules
// the exact solver out, the request is answered from the SVD heuristic
// immediately and — when affordable — an *async exact refinement* task is
// queued on the shared thread pool; it upgrades the cache entry in the
// background, so later equivalent requests are served the optimum
// (cache_state = kHitUpgraded). An upgrade never lowers the served
// objective (SolutionCache's monotone guarantee).
//
// Determinism contract: the solver decision is a pure function of
// (p, q, mode, deadline_us) — never of elapsed wall time — and a cold
// request is solved on the canonically sorted pool, which the solvers
// sort anyway, so a response is bit-identical to a direct
// solve_optimal_arrangement / solve_heuristic call with the same times,
// for any server thread count and any client concurrency
// (tests/test_serve.cpp, `hetgrid serve --smoke`). The only wall-clock
// input is the optional per-request expiry check (deadline_us > 0), which
// can produce a kDeadlineExceeded error but never a different solution.
//
// Front ends, thinnest first:
//   * handle_payload(): the serial loopback — one encoded payload in, one
//     encoded payload out, no sockets anywhere (tests, benches);
//   * handle_batch(): batch admission — decodes a vector of payloads and
//     fans the solves out across the pool, responses in request order;
//   * serve_fd(): a blocking accept loop on a listening TCP/unix socket;
//     each connection becomes a pool task streaming length-prefixed
//     frames (tools/hetgrid_cli.cpp `hetgrid serve`).
//
// Observability: obs/metrics counters ("serve.requests", "serve.errors",
// "serve.solved.exact", "serve.solved.heuristic", "serve.refines",
// "serve.cache.{hits,misses,inserts,upgrades}"), a wall-clock
// "serve.latency_us" histogram (p50/p95/p99 via Histogram::quantile), and
// obs/profiler spans around every solve. Counters are deterministic for a
// fixed request sequence; the latency histogram is wall-clock by nature
// and excluded from byte-stability claims (doc/server.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/solution_cache.hpp"
#include "util/thread_pool.hpp"

namespace hetgrid::serve {

struct ServerOptions {
  /// Worker threads shared by socket connections, batch admission, and
  /// async refinement (0 = all hardware threads).
  unsigned threads = 1;
  /// Power-of-two shard count for the solution cache.
  std::size_t cache_shards = 16;
  /// Auto-mode cost gate: the exact solver runs inline only if Scoins'
  /// tree count and the pool size fit these budgets (the same rule as
  /// `hetgrid solve --solver=auto`).
  std::uint64_t exact_tree_budget = 100'000;
  std::size_t exact_pool_budget = 10;
  /// Auto-mode deadline gate: a request with 0 < deadline_us < this floor
  /// is served from the heuristic even when the exact solver is
  /// affordable (it gets refined asynchronously instead).
  std::uint64_t exact_deadline_floor_us = 20'000;
  /// Queue an exact refinement whenever a request was answered from the
  /// heuristic and the exact solver is affordable.
  bool async_refine = true;
};

/// Outcome of one placement: either a response or a typed error.
struct PlaceOutcome {
  bool ok = false;
  PlacementResponse response;  // valid when ok
  ErrorMessage error;          // valid when !ok
};

class PlacementServer {
 public:
  explicit PlacementServer(ServerOptions opts = {});
  /// Graceful shutdown: stops accepting, lets in-flight requests and
  /// refinements finish, joins the pool.
  ~PlacementServer();

  PlacementServer(const PlacementServer&) = delete;
  PlacementServer& operator=(const PlacementServer&) = delete;

  /// Typed API: validate, consult the cache, solve on a miss. Thread-safe;
  /// runs on the calling thread (the loopback clients of the smoke test
  /// call this concurrently).
  PlaceOutcome place(const PlacementRequest& req);

  /// Serial loopback: one request payload in (protocol.hpp encoding, no
  /// length prefix), one response/error payload out. Never throws on bad
  /// bytes — malformed input comes back as an error frame.
  std::vector<std::uint8_t> handle_payload(
      const std::vector<std::uint8_t>& payload);

  /// Batch admission: decodes every payload, fans the valid requests out
  /// across the worker pool, and returns the encoded outcomes in request
  /// order once all have finished.
  std::vector<std::vector<std::uint8_t>> handle_batch(
      const std::vector<std::vector<std::uint8_t>>& payloads);

  /// Accept loop on a listening socket fd (see listen_tcp / listen_unix).
  /// Blocks until shutdown(); each accepted connection is served as a pool
  /// task that answers frames until the peer closes. Takes ownership of
  /// `listen_fd`.
  void serve_fd(int listen_fd);

  /// Initiates graceful shutdown: serve_fd() returns, open connections
  /// are answered a final kShutdown error on their next request, queued
  /// work (including refinements) drains. Idempotent, thread-safe.
  void shutdown();

  /// Blocks until every queued pool task (connections, batch members,
  /// async refinements) has finished — how tests await refinement.
  void drain();

  /// Introspection snapshot served to kStatsRequest frames: cache
  /// occupancy, the installed metrics registry's JSON snapshot (truncated
  /// to kMaxStatsMetricsBytes), and the installed observation's estimator
  /// lanes + drift count. Fields for absent registries/observations are
  /// empty, never an error.
  StatsReply stats() const;

  const SolutionCache& cache() const { return cache_; }
  const ServerOptions& options() const { return opts_; }
  bool stopping() const { return stop_.load(std::memory_order_acquire); }

  /// True if the exact solver fits the configured budgets for this shape.
  bool exact_affordable(std::size_t p, std::size_t q) const;

 private:
  PlaceOutcome place_admitted(const PlacementRequest& req,
                              std::chrono::steady_clock::time_point admitted);
  std::vector<std::uint8_t> process_payload(
      const std::vector<std::uint8_t>& payload,
      std::chrono::steady_clock::time_point admitted);
  PlaceOutcome solve_miss(const PlacementRequest& req,
                          const CanonicalPlacement& canonical);
  void queue_refinement(const CanonicalPlacement& canonical);
  void serve_connection(int fd);

  ServerOptions opts_;
  SolutionCache cache_;
  std::atomic<bool> stop_{false};
  std::atomic<int> listen_fd_{-1};
  // Last member: destroyed first, so workers (which touch cache_ and
  // stop_) are joined while the rest of the server is still alive.
  ThreadPool pool_;
};

/// Creates a listening TCP socket bound to 127.0.0.1:`port` (0 picks a
/// free port, reported through `bound_port`). Throws PreconditionError on
/// failure.
int listen_tcp(std::uint16_t port, std::uint16_t* bound_port = nullptr);

/// Creates a listening unix-domain socket at `path` (an existing socket
/// file is replaced). Throws PreconditionError on failure.
int listen_unix(const std::string& path);

}  // namespace hetgrid::serve
