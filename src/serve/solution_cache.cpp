#include "serve/solution_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace hetgrid::serve {

namespace {

/// splitmix64 finalizer — the repo's hashing discipline (mp/block_store).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

CanonicalPlacement canonicalize_placement(std::size_t p, std::size_t q,
                                          const std::vector<double>& times) {
  const std::size_t n = p * q;
  HG_CHECK(n > 0 && times.size() == n,
           "canonicalize: times size " << times.size() << " != " << p << "x"
                                       << q);
  CanonicalPlacement out;
  out.p = p;
  out.q = q;

  // Stable value sort with index tie-break: deterministic even when the
  // pool holds duplicate cycle-times.
  out.sorted_to_request.resize(n);
  std::iota(out.sorted_to_request.begin(), out.sorted_to_request.end(), 0u);
  std::sort(out.sorted_to_request.begin(), out.sorted_to_request.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (times[a] != times[b]) return times[a] < times[b];
              return a < b;
            });
  out.sorted.resize(n);
  for (std::size_t k = 0; k < n; ++k)
    out.sorted[k] = times[out.sorted_to_request[k]];

  // Ascending-order summation: permutation-invariant bits for the scale,
  // hence for every quotient below.
  double sum = 0.0;
  for (double v : out.sorted) sum += v;
  HG_CHECK(std::isfinite(sum) && sum > 0.0,
           "canonicalize: cycle-time sum is not positive and finite");
  out.scale = sum;
  out.unit.resize(n);
  for (std::size_t k = 0; k < n; ++k) out.unit[k] = out.sorted[k] / sum;

  std::uint64_t h = mix64((static_cast<std::uint64_t>(p) << 32) ^
                          static_cast<std::uint64_t>(q));
  for (double v : out.unit) h = mix64(h ^ std::bit_cast<std::uint64_t>(v));
  out.hash = h;
  return out;
}

bool same_key(const CachedSolution& entry, const CanonicalPlacement& key) {
  return entry.p == key.p && entry.q == key.q && entry.unit == key.unit;
}

SolutionCache::SolutionCache(std::size_t shards) {
  std::size_t n = 1;
  while (n < std::max<std::size_t>(shards, 1)) n <<= 1;
  shards_ = std::vector<Shard>(n);
}

std::optional<CachedSolution> SolutionCache::lookup(
    const CanonicalPlacement& key) const {
  const Shard& shard = shard_for(key.hash);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [hash, entry] : shard.entries) {
      if (hash == key.hash && same_key(entry, key)) {
        metric_count("serve.cache.hits");
        return entry;
      }
    }
  }
  metric_count("serve.cache.misses");
  return std::nullopt;
}

bool SolutionCache::insert_or_upgrade(CachedSolution sol) {
  const std::size_t n = sol.p * sol.q;
  HG_CHECK(sol.unit.size() == n && sol.r.size() == sol.p &&
               sol.c.size() == sol.q && sol.arrangement.size() == n,
           "cache entry shape mismatch");
  CanonicalPlacement key;  // only the fields same_key/hash_for consume
  key.p = sol.p;
  key.q = sol.q;
  key.unit = sol.unit;
  std::uint64_t h = mix64((static_cast<std::uint64_t>(sol.p) << 32) ^
                          static_cast<std::uint64_t>(sol.q));
  for (double v : sol.unit) h = mix64(h ^ std::bit_cast<std::uint64_t>(v));
  key.hash = h;

  Shard& shard = shard_for(h);
  std::lock_guard<std::mutex> lock(shard.mu);
  for (auto& [hash, entry] : shard.entries) {
    if (hash != h || !same_key(entry, key)) continue;
    // Upgrade policy: exact replaces heuristic (as long as it is not
    // worse), and a strictly better objective replaces anything. Never
    // install a worse unit_objective — previously served responses stay
    // lower bounds on what the cache answers.
    const bool better_kind = sol.exact && !entry.exact;
    const bool improves = sol.unit_objective() > entry.unit_objective();
    const bool not_worse = sol.unit_objective() >= entry.unit_objective();
    if ((better_kind && not_worse) || improves) {
      sol.upgraded = true;
      entry = std::move(sol);
      metric_count("serve.cache.upgrades");
      return true;
    }
    return false;
  }
  shard.entries.emplace_back(h, std::move(sol));
  metric_count("serve.cache.inserts");
  return true;
}

std::size_t SolutionCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace hetgrid::serve
