// Wire protocol of the placement service (doc/server.md).
//
// Every message travels as a length-prefixed binary frame:
//
//   [u32 payload_len][payload bytes]          (all integers little-endian)
//
// and every payload starts with the same 8-byte header — magic "HGPL",
// a protocol version, and a message type — followed by a typed body
// (request / response / error). The format is versioned: a server answers
// an unsupported version with a kBadVersion error frame that names the
// version it speaks, so a newer client can downgrade (version
// negotiation, doc/server.md).
//
// Encoding and decoding are pure byte-vector transforms with no socket
// dependency: the serial loopback mode (PlacementServer::handle_payload)
// and the tests drive them directly, the socket paths just add the
// 4-byte length prefix on the wire. Decode never throws on malformed
// input — it returns a typed WireError instead, which the server echoes
// back as an error frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hetgrid::serve {

/// Protocol constants. kMagic reads "HGPL" in the byte stream.
inline constexpr std::uint32_t kMagic = 0x4C504748u;  // 'H' 'G' 'P' 'L'
inline constexpr std::uint16_t kProtocolVersion = 1;
/// Hard caps the server enforces before touching a solver: grid sides and
/// the implied maximum payload (header + request fixed fields + t_ij).
inline constexpr std::size_t kMaxGridSide = 128;
inline constexpr std::size_t kMaxPayload =
    24 + kMaxGridSide * kMaxGridSide * 8;

enum class MsgType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
  // Introspection (appended in-place within version 1: servers that
  // predate it answer kBadType, which clients read as "no stats support").
  kStatsRequest = 4,
  kStatsResponse = 5,
};

/// Size caps keeping a kStatsResponse under kMaxPayload: the metrics JSON
/// is truncated to 64 KiB, the estimate table to its first 2048 lanes.
inline constexpr std::size_t kMaxStatsMetricsBytes = 64 * 1024;
inline constexpr std::size_t kMaxStatsEstimates = 2048;

/// Client-requested solver policy.
enum class Mode : std::uint8_t {
  kAuto = 0,       // exact when affordable and the deadline allows, else
                   // heuristic with async exact refinement
  kExact = 1,      // exact or a kTooCostly error
  kHeuristic = 2,  // SVD heuristic, never the exact solver inline
};

enum class SolverKind : std::uint8_t {
  kExact = 1,
  kHeuristic = 2,
};

enum class CacheState : std::uint8_t {
  kMiss = 0,         // solved inline for this request
  kHit = 1,          // served from the canonicalizing cache
  kHitUpgraded = 2,  // served from an entry async refinement upgraded
};

/// Typed error codes carried by kError frames (and returned by decode on
/// malformed input). Values are wire-stable; append only.
enum class WireError : std::uint16_t {
  kOk = 0,
  kBadMagic = 1,         // payload does not start with "HGPL"
  kBadVersion = 2,       // unsupported protocol version
  kBadFrame = 3,         // truncated payload or trailing bytes
  kBadType = 4,          // unknown MsgType, or a non-request sent to serve
  kBadDimensions = 5,    // p or q zero, above kMaxGridSide, or p*q mismatch
  kBadCycleTime = 6,     // a t_ij that is non-positive, NaN, or infinite
  kBadMode = 7,          // unknown Mode byte
  kDeadlineExceeded = 8, // request expired before a solver ran
  kShutdown = 9,         // server is draining; retry elsewhere
  kTooCostly = 10,       // Mode::kExact on a grid over the exact budget
  kInternal = 11,        // solver threw; detail carries the what() string
};

/// Human-readable name of a WireError ("bad-magic", ...), for logs and the
/// CLI; never sent on the wire.
const char* wire_error_name(WireError e);

/// Request body: solve the placement problem for a p x q grid of
/// cycle-times. `times` is the row-major t_ij grid (equivalently the
/// processor pool — the solvers re-arrange it per Theorem 1, and the
/// response's `perm` says where each entry landed).
struct PlacementRequest {
  std::uint16_t p = 0;
  std::uint16_t q = 0;
  Mode mode = Mode::kAuto;
  std::uint64_t deadline_us = 0;  // 0 = no deadline
  std::vector<double> times;      // p*q entries, all positive and finite
};

/// Response body. `r`/`c` are the row and column shares for the returned
/// arrangement; `perm[i*q + j]` is the index into the *request's* times
/// vector of the processor placed at grid slot (i, j).
struct PlacementResponse {
  std::uint16_t p = 0;
  std::uint16_t q = 0;
  SolverKind solver = SolverKind::kHeuristic;
  CacheState cache_state = CacheState::kMiss;
  double objective = 0.0;  // Obj2 = (sum r)(sum c) for the request's times
  std::vector<double> r;   // p entries
  std::vector<double> c;   // q entries
  std::vector<std::uint32_t> perm;  // p*q entries
};

struct ErrorMessage {
  WireError code = WireError::kOk;
  std::string detail;  // short ASCII diagnostic, may be empty
};

/// Server introspection snapshot (kStatsResponse body, doc/server.md):
/// solution-cache occupancy, the process metrics registry as JSON, and the
/// installed cycle-time estimator's lane table + drift count. A server
/// with no metrics registry or observation installed sends empty/zero
/// fields — the message is always well-formed.
struct StatsReply {
  std::uint64_t cache_entries = 0;
  std::uint32_t cache_shards = 0;
  std::uint32_t drift_events = 0;
  std::string metrics_json;  // "" when no registry; truncated to the cap

  /// One estimator lane: proc id, ObsOp value, sample count, EWMA
  /// seconds/unit, cumulative units.
  struct Estimate {
    std::uint32_t proc = 0;
    std::uint8_t op = 0;
    std::uint64_t samples = 0;
    double estimate = 0.0;
    double units = 0.0;
  };
  std::vector<Estimate> estimates;  // (proc, op)-ascending
};

/// One decoded payload. `parse_error != kOk` means the bytes were not a
/// well-formed frame and nothing else is valid; otherwise exactly the
/// member matching `type` is populated. A decoded kError frame is a
/// *well-formed* message whose content is `error`.
struct Decoded {
  WireError parse_error = WireError::kOk;
  MsgType type = MsgType::kError;
  PlacementRequest request;
  PlacementResponse response;
  ErrorMessage error;
  StatsReply stats;

  bool ok() const { return parse_error == WireError::kOk; }
};

/// Payload encoders (no length prefix — see frame()).
std::vector<std::uint8_t> encode_request(const PlacementRequest& req);
std::vector<std::uint8_t> encode_response(const PlacementResponse& rsp);
std::vector<std::uint8_t> encode_error(WireError code,
                                       const std::string& detail);
std::vector<std::uint8_t> encode_stats_request();
std::vector<std::uint8_t> encode_stats(const StatsReply& stats);

/// Decodes one payload (no length prefix). Never throws on bad bytes.
Decoded decode_payload(const std::uint8_t* data, std::size_t len);
inline Decoded decode_payload(const std::vector<std::uint8_t>& payload) {
  return decode_payload(payload.data(), payload.size());
}

/// Prepends the u32 length prefix: the bytes a socket peer transmits.
std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload);

/// Blocking framed I/O on a connected POSIX fd. read_frame returns false
/// on clean EOF before any byte of a frame; it throws PreconditionError on
/// mid-frame EOF, oversized frames (> kMaxPayload), or I/O errors.
bool read_frame(int fd, std::vector<std::uint8_t>& payload);
void write_frame(int fd, const std::vector<std::uint8_t>& payload);

}  // namespace hetgrid::serve
