#include "serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>

#include "core/arrangement.hpp"
#include "core/heuristic.hpp"
#include "obs/imbalance.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/check.hpp"

namespace hetgrid::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// How often blocked accept/recv loops wake up to check the stop flag.
constexpr int kPollMs = 100;

double elapsed_us(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

/// Recovers, for each grid slot of the solver's arrangement, the index of
/// the pool entry placed there. The solver's grid values are exactly a
/// rearrangement of the sorted pool (no arithmetic touches them), so
/// bitwise matching is sound; duplicates are consumed in ascending pool
/// order for determinism.
std::vector<std::uint32_t> arrangement_indices(
    const CycleTimeGrid& grid, const std::vector<double>& sorted_pool) {
  const std::size_t n = sorted_pool.size();
  std::vector<bool> used(n, false);
  std::vector<std::uint32_t> out(n);
  const std::vector<double>& values = grid.row_major();
  HG_INTERNAL_CHECK(values.size() == n, "arrangement size mismatch");
  for (std::size_t slot = 0; slot < n; ++slot) {
    std::size_t k = static_cast<std::size_t>(
        std::lower_bound(sorted_pool.begin(), sorted_pool.end(),
                         values[slot]) -
        sorted_pool.begin());
    while (k < n && (used[k] || sorted_pool[k] != values[slot])) ++k;
    HG_INTERNAL_CHECK(k < n && sorted_pool[k] == values[slot],
                      "solver arrangement is not a rearrangement of the pool");
    used[k] = true;
    out[slot] = static_cast<std::uint32_t>(k);
  }
  return out;
}

/// Maps a cached (canonical-coordinates) solution back into the request's
/// layout. `ratio` == 1.0 exactly when the request's scale bit-matches the
/// entry's (x/x is exact in IEEE), and division by 1.0 is the identity, so
/// same-scale hits reproduce the stored shares bit for bit.
PlacementResponse response_from_entry(const CachedSolution& entry,
                                      const CanonicalPlacement& canonical,
                                      CacheState state) {
  const double ratio = canonical.scale / entry.scale;
  PlacementResponse rsp;
  rsp.p = static_cast<std::uint16_t>(entry.p);
  rsp.q = static_cast<std::uint16_t>(entry.q);
  rsp.solver = entry.exact ? SolverKind::kExact : SolverKind::kHeuristic;
  rsp.cache_state = state;
  rsp.objective = entry.obj2 / ratio;
  rsp.r.resize(entry.p);
  for (std::size_t i = 0; i < entry.p; ++i) rsp.r[i] = entry.r[i] / ratio;
  rsp.c = entry.c;
  rsp.perm.resize(entry.arrangement.size());
  for (std::size_t slot = 0; slot < entry.arrangement.size(); ++slot)
    rsp.perm[slot] = canonical.sorted_to_request[entry.arrangement[slot]];
  return rsp;
}

PlaceOutcome error_outcome(WireError code, std::string detail) {
  PlaceOutcome out;
  out.ok = false;
  out.error = {code, std::move(detail)};
  metric_count("serve.errors");
  return out;
}

}  // namespace

PlacementServer::PlacementServer(ServerOptions opts)
    : opts_(opts),
      cache_(opts.cache_shards),
      pool_(ThreadPool::resolve_threads(opts.threads)) {}

PlacementServer::~PlacementServer() { shutdown(); }

bool PlacementServer::exact_affordable(std::size_t p, std::size_t q) const {
  return p * q <= opts_.exact_pool_budget &&
         exact_solver_cost(p, q) <= opts_.exact_tree_budget;
}

PlaceOutcome PlacementServer::place(const PlacementRequest& req) {
  return place_admitted(req, Clock::now());
}

PlaceOutcome PlacementServer::place_admitted(const PlacementRequest& req,
                                             Clock::time_point admitted) {
  ProfScope span("serve.place");
  metric_count("serve.requests");
  const auto started = Clock::now();

  if (stop_.load(std::memory_order_acquire))
    return error_outcome(WireError::kShutdown, "server is draining");
  const std::size_t n =
      static_cast<std::size_t>(req.p) * static_cast<std::size_t>(req.q);
  if (req.p == 0 || req.q == 0 || req.p > kMaxGridSide ||
      req.q > kMaxGridSide || req.times.size() != n)
    return error_outcome(WireError::kBadDimensions,
                         "times size must equal p*q, sides in [1, 128]");
  for (double t : req.times)
    if (!std::isfinite(t) || t <= 0.0)
      return error_outcome(WireError::kBadCycleTime,
                           "cycle-times must be positive and finite");
  if (req.mode > Mode::kHeuristic)
    return error_outcome(WireError::kBadMode, "unknown mode");
  // The only wall-clock decision: expire requests that waited in a queue
  // past their own deadline. Solver choice below is deadline-*value*
  // driven and stays deterministic.
  if (req.deadline_us > 0 &&
      elapsed_us(admitted) > static_cast<double>(req.deadline_us))
    return error_outcome(WireError::kDeadlineExceeded,
                         "request expired before solving");

  const CanonicalPlacement canonical =
      canonicalize_placement(req.p, req.q, req.times);

  PlaceOutcome out;
  if (std::optional<CachedSolution> entry = cache_.lookup(canonical)) {
    out.ok = true;
    out.response = response_from_entry(
        *entry, canonical,
        entry->upgraded ? CacheState::kHitUpgraded : CacheState::kHit);
  } else {
    out = solve_miss(req, canonical);
  }
  metric_record("serve.latency_us", elapsed_us(started));
  return out;
}

PlaceOutcome PlacementServer::solve_miss(const PlacementRequest& req,
                                         const CanonicalPlacement& canonical) {
  const bool affordable = exact_affordable(req.p, req.q);
  bool use_exact = false;
  switch (req.mode) {
    case Mode::kExact:
      if (!affordable)
        return error_outcome(
            WireError::kTooCostly,
            "exact solve over budget; use mode=auto or heuristic");
      use_exact = true;
      break;
    case Mode::kHeuristic:
      use_exact = false;
      break;
    case Mode::kAuto:
      use_exact = affordable &&
                  (req.deadline_us == 0 ||
                   req.deadline_us >= opts_.exact_deadline_floor_us);
      break;
  }

  CachedSolution sol;
  sol.p = req.p;
  sol.q = req.q;
  sol.unit = canonical.unit;
  sol.scale = canonical.scale;
  try {
    if (use_exact) {
      ProfScope span("serve.solve.exact");
      const OptimalArrangement opt =
          solve_optimal_arrangement(req.p, req.q, canonical.sorted);
      sol.exact = true;
      sol.obj2 = opt.solution.obj2;
      sol.r = opt.solution.alloc.r;
      sol.c = opt.solution.alloc.c;
      sol.arrangement = arrangement_indices(opt.grid, canonical.sorted);
      metric_count("serve.solved.exact");
    } else {
      ProfScope span("serve.solve.heuristic");
      const HeuristicResult res =
          solve_heuristic(req.p, req.q, canonical.sorted);
      sol.exact = false;
      sol.obj2 = res.final().obj2;
      sol.r = res.final().alloc.r;
      sol.c = res.final().alloc.c;
      sol.arrangement = arrangement_indices(res.final().grid, canonical.sorted);
      metric_count("serve.solved.heuristic");
    }
  } catch (const std::exception& e) {
    return error_outcome(WireError::kInternal, e.what());
  }

  // Build the response from the fresh solution (scale ratio is exactly
  // 1.0: the entry was solved on this very request's pool), then publish
  // it. If a concurrent request for the same key solved first, the cache
  // keeps the better entry — both racers solved identical inputs, so the
  // served bits are identical either way.
  PlaceOutcome out;
  out.ok = true;
  out.response = response_from_entry(sol, canonical, CacheState::kMiss);
  const bool served_heuristic = !sol.exact;
  cache_.insert_or_upgrade(std::move(sol));
  if (served_heuristic && opts_.async_refine && affordable &&
      !stop_.load(std::memory_order_acquire))
    queue_refinement(canonical);
  return out;
}

void PlacementServer::queue_refinement(const CanonicalPlacement& canonical) {
  metric_count("serve.refines");
  pool_.submit([this, canonical]() {
    if (stop_.load(std::memory_order_acquire)) return;
    if (std::optional<CachedSolution> entry = cache_.lookup(canonical);
        entry && entry->exact)
      return;  // a sibling refinement or exact request got there first
    ProfScope span("serve.refine");
    try {
      const OptimalArrangement opt = solve_optimal_arrangement(
          canonical.p, canonical.q, canonical.sorted);
      CachedSolution sol;
      sol.p = canonical.p;
      sol.q = canonical.q;
      sol.unit = canonical.unit;
      sol.scale = canonical.scale;
      sol.exact = true;
      sol.obj2 = opt.solution.obj2;
      sol.r = opt.solution.alloc.r;
      sol.c = opt.solution.alloc.c;
      sol.arrangement = arrangement_indices(opt.grid, canonical.sorted);
      cache_.insert_or_upgrade(std::move(sol));
    } catch (const std::exception&) {
      // Refinement is best-effort: the heuristic entry stays authoritative.
      metric_count("serve.refine_failures");
    }
  });
}

std::vector<std::uint8_t> PlacementServer::process_payload(
    const std::vector<std::uint8_t>& payload, Clock::time_point admitted) {
  const Decoded decoded = decode_payload(payload);
  if (!decoded.ok()) {
    metric_count("serve.errors");
    return encode_error(decoded.parse_error,
                        wire_error_name(decoded.parse_error));
  }
  if (decoded.type == MsgType::kStatsRequest) {
    metric_count("serve.stats");
    return encode_stats(stats());
  }
  if (decoded.type != MsgType::kRequest) {
    metric_count("serve.errors");
    return encode_error(WireError::kBadType, "server accepts only requests");
  }
  const PlaceOutcome outcome = place_admitted(decoded.request, admitted);
  return outcome.ok ? encode_response(outcome.response)
                    : encode_error(outcome.error.code, outcome.error.detail);
}

StatsReply PlacementServer::stats() const {
  StatsReply out;
  out.cache_entries = cache_.size();
  out.cache_shards = static_cast<std::uint32_t>(cache_.shard_count());
  if (const MetricsRegistry* m = installed_metrics()) {
    out.metrics_json = m->snapshot_json();
    if (out.metrics_json.size() > kMaxStatsMetricsBytes)
      out.metrics_json.resize(kMaxStatsMetricsBytes);
  }
  if (const RunObservation* obs = installed_observation()) {
    out.drift_events =
        static_cast<std::uint32_t>(obs->estimator.drift_events().size());
    for (const CycleEstimate& e : obs->estimator.estimates()) {
      if (out.estimates.size() >= kMaxStatsEstimates) break;
      StatsReply::Estimate wire;
      wire.proc = static_cast<std::uint32_t>(e.proc);
      wire.op = static_cast<std::uint8_t>(e.op);
      wire.samples = e.samples;
      wire.estimate = e.seconds_per_unit;
      wire.units = e.units;
      out.estimates.push_back(wire);
    }
  }
  return out;
}

std::vector<std::uint8_t> PlacementServer::handle_payload(
    const std::vector<std::uint8_t>& payload) {
  return process_payload(payload, Clock::now());
}

std::vector<std::vector<std::uint8_t>> PlacementServer::handle_batch(
    const std::vector<std::vector<std::uint8_t>>& payloads) {
  const auto admitted = Clock::now();
  metric_record("serve.batch.frames", static_cast<double>(payloads.size()));
  std::vector<std::vector<std::uint8_t>> out(payloads.size());
  if (payloads.empty()) return out;

  // Private completion latch: waiting on the pool's global idle state
  // would also wait for unrelated refinements and other batches.
  std::mutex mu;
  std::condition_variable done;
  std::size_t remaining = payloads.size();
  std::vector<std::function<void()>> tasks;
  tasks.reserve(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    tasks.push_back([this, &payloads, &out, &mu, &done, &remaining, admitted,
                     i]() {
      std::vector<std::uint8_t> result = process_payload(payloads[i], admitted);
      std::lock_guard<std::mutex> lock(mu);
      out[i] = std::move(result);
      if (--remaining == 0) done.notify_one();
    });
  }
  pool_.submit_batch(std::move(tasks));
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
  return out;
}

void PlacementServer::serve_connection(int fd) {
  std::vector<std::uint8_t> payload;
  for (;;) {
    // Park in poll() so the stop flag is honored even when the peer is
    // idle; a blocking read would pin the worker past shutdown.
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (stop_.load(std::memory_order_acquire)) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    try {
      if (!read_frame(fd, payload)) break;  // clean EOF
      write_frame(fd, process_payload(payload, Clock::now()));
    } catch (const std::exception&) {
      metric_count("serve.connection_errors");
      break;
    }
  }
  ::close(fd);
  metric_count("serve.connections_closed");
}

void PlacementServer::serve_fd(int listen_fd) {
  HG_CHECK(listen_fd >= 0, "serve_fd needs a valid listening socket");
  listen_fd_.store(listen_fd, std::memory_order_release);
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed by shutdown()
    }
    metric_count("serve.connections");
    pool_.submit([this, conn]() { serve_connection(conn); });
  }
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

void PlacementServer::shutdown() {
  stop_.store(true, std::memory_order_release);
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
  pool_.wait_idle();
}

void PlacementServer::drain() { pool_.wait_idle(); }

int listen_tcp(std::uint16_t port, std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HG_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    HG_CHECK(false, "cannot listen on 127.0.0.1:" << port << ": "
                                                  << std::strerror(err));
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    HG_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
             "getsockname failed: " << std::strerror(errno));
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  HG_CHECK(path.size() < sizeof addr.sun_path,
           "unix socket path too long: " << path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HG_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    HG_CHECK(false,
             "cannot listen on " << path << ": " << std::strerror(err));
  }
  return fd;
}

}  // namespace hetgrid::serve
