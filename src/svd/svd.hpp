// Singular value decomposition kernels for the rank-1-approximation
// heuristic (paper Section 4.4.2).
//
// The heuristic needs only the dominant singular triplet (s, a, b) of the
// small p x q matrix T^inv = (1/t_ij); we provide a power-iteration routine
// for that, plus a full one-sided Jacobi SVD used for validation, for the
// rank-1 distance diagnostics, and for the T-vs-T^inv ablation.
#pragma once

#include <vector>

#include "matrix/matrix.hpp"

namespace hetgrid {

/// Dominant singular triplet: m ~ sigma * u * v^T is the best rank-1
/// approximation in the l2 / Frobenius sense (Eckart–Young).
struct SingularTriplet {
  double sigma = 0.0;
  std::vector<double> u;  // left singular vector, size rows
  std::vector<double> v;  // right singular vector, size cols
  int iterations = 0;     // power iterations used
};

/// Computes the dominant singular triplet by power iteration on the Gram
/// operator (alternating m^T m), with deterministic start vector. Both
/// returned vectors are unit-norm with a sign convention of nonnegative
/// first component of v (so results are reproducible across platforms).
///
/// Converges for any matrix with sigma_1 > sigma_2; for sigma_1 == sigma_2
/// it still returns a valid dominant-subspace vector (any is acceptable for
/// the heuristic).
SingularTriplet dominant_triplet(const ConstMatrixView& m,
                                 double tol = 1e-14, int max_iter = 10000);

/// Full SVD result: m = U * diag(sigma) * V^T, sigma sorted descending.
/// U is rows x k, V is cols x k where k = min(rows, cols).
struct SvdResult {
  Matrix u;
  std::vector<double> sigma;
  Matrix v;
  int sweeps = 0;  // Jacobi sweeps used
};

/// One-sided Jacobi SVD (Hestenes). Accurate for the small, well-scaled
/// matrices hetgrid feeds it; O(sweeps * rows * cols^2).
SvdResult jacobi_svd(const ConstMatrixView& m, double tol = 1e-14,
                     int max_sweeps = 60);

/// Best rank-1 approximation sigma_1 * u_1 v_1^T as a dense matrix.
Matrix rank1_approximation(const ConstMatrixView& m);

/// Frobenius distance from `m` to its best rank-1 approximation, normalized
/// by ||m||_F. Zero iff rank(m) <= 1. The paper's heuristic performs best
/// when this is small for the arranged cycle-time matrix.
double rank1_defect(const ConstMatrixView& m);

}  // namespace hetgrid
