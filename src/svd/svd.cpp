#include "svd/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "matrix/gemm.hpp"

namespace hetgrid {

namespace {

double vec_norm(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

void normalize(std::vector<double>& v) {
  const double n = vec_norm(v);
  HG_CHECK(n > 0.0, "cannot normalize zero vector");
  for (double& x : v) x /= n;
}

// y = m^T x (x has rows(m) entries, y gets cols(m)).
void mat_t_vec(const ConstMatrixView& m, const std::vector<double>& x,
               std::vector<double>& y) {
  y.assign(m.cols(), 0.0);
  for (std::size_t j = 0; j < m.cols(); ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m.rows(); ++i) acc += m(i, j) * x[i];
    y[j] = acc;
  }
}

// y = m x.
void mat_vec(const ConstMatrixView& m, const std::vector<double>& x,
             std::vector<double>& y) {
  y.assign(m.rows(), 0.0);
  for (std::size_t j = 0; j < m.cols(); ++j) {
    const double xj = x[j];
    for (std::size_t i = 0; i < m.rows(); ++i) y[i] += m(i, j) * xj;
  }
}

}  // namespace

SingularTriplet dominant_triplet(const ConstMatrixView& m, double tol,
                                 int max_iter) {
  HG_CHECK(m.rows() > 0 && m.cols() > 0, "empty matrix");
  SingularTriplet out;
  // Deterministic start: all-ones right vector. For the positive matrices
  // the heuristic feeds us (entries 1/t_ij > 0) this has a nonzero component
  // on the Perron-like dominant direction, so convergence is guaranteed.
  std::vector<double> v(m.cols(), 1.0);
  normalize(v);
  std::vector<double> u, next_v;

  double sigma = 0.0;
  int it = 0;
  for (; it < max_iter; ++it) {
    mat_vec(m, v, u);
    const double un = vec_norm(u);
    if (un == 0.0) {
      // v is in the null space; the matrix may be rank-deficient in this
      // direction. Return sigma = 0 with the current vectors.
      out.sigma = 0.0;
      out.u.assign(m.rows(), 0.0);
      out.v = v;
      out.iterations = it;
      return out;
    }
    for (double& x : u) x /= un;
    mat_t_vec(m, u, next_v);
    const double new_sigma = vec_norm(next_v);
    if (new_sigma == 0.0) break;
    for (double& x : next_v) x /= new_sigma;
    const bool converged = std::abs(new_sigma - sigma) <=
                           tol * std::max(1.0, std::abs(new_sigma));
    sigma = new_sigma;
    v.swap(next_v);
    if (converged) {
      ++it;
      break;
    }
  }

  // Sign convention: first component of v nonnegative.
  if (!v.empty() && v[0] < 0.0) {
    for (double& x : v) x = -x;
    for (double& x : u) x = -x;
  }
  out.sigma = sigma;
  out.u = std::move(u);
  out.v = std::move(v);
  out.iterations = it;
  return out;
}

SvdResult jacobi_svd(const ConstMatrixView& m, double tol, int max_sweeps) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  HG_CHECK(rows > 0 && cols > 0, "empty matrix");

  // One-sided Jacobi works on a tall matrix; transpose if needed and swap
  // U/V at the end.
  const bool transposed = rows < cols;
  const std::size_t r = transposed ? cols : rows;
  const std::size_t c = transposed ? rows : cols;

  Matrix a(r, c, 0.0);
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < rows; ++i) {
      if (transposed)
        a(j, i) = m(i, j);
      else
        a(i, j) = m(i, j);
    }

  Matrix v = Matrix::identity(c);

  int sweep = 0;
  for (; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < c; ++p) {
      for (std::size_t q = p + 1; q < c; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < r; ++i) {
          app += a(i, p) * a(i, p);
          aqq += a(i, q) * a(i, q);
          apq += a(i, p) * a(i, q);
        }
        if (std::abs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0)
          continue;
        rotated = true;
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0)
                             ? 1.0 / (zeta + std::sqrt(1.0 + zeta * zeta))
                             : -1.0 / (-zeta + std::sqrt(1.0 + zeta * zeta));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        for (std::size_t i = 0; i < r; ++i) {
          const double ap = a(i, p), aq = a(i, q);
          a(i, p) = cs * ap - sn * aq;
          a(i, q) = sn * ap + cs * aq;
        }
        for (std::size_t i = 0; i < c; ++i) {
          const double vp = v(i, p), vq = v(i, q);
          v(i, p) = cs * vp - sn * vq;
          v(i, q) = sn * vp + cs * vq;
        }
      }
    }
    if (!rotated) break;
  }

  // Column norms of the rotated matrix are the singular values.
  std::vector<double> sigma(c, 0.0);
  Matrix u(r, c, 0.0);
  for (std::size_t j = 0; j < c; ++j) {
    double n2 = 0.0;
    for (std::size_t i = 0; i < r; ++i) n2 += a(i, j) * a(i, j);
    sigma[j] = std::sqrt(n2);
    if (sigma[j] > 0.0)
      for (std::size_t i = 0; i < r; ++i) u(i, j) = a(i, j) / sigma[j];
  }

  // Sort descending by sigma.
  std::vector<std::size_t> order(c);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  SvdResult out;
  out.sigma.resize(c);
  out.u = Matrix(r, c, 0.0);
  out.v = Matrix(c, c, 0.0);
  for (std::size_t j = 0; j < c; ++j) {
    out.sigma[j] = sigma[order[j]];
    for (std::size_t i = 0; i < r; ++i) out.u(i, j) = u(i, order[j]);
    for (std::size_t i = 0; i < c; ++i) out.v(i, j) = v(i, order[j]);
  }
  out.sweeps = sweep;

  if (transposed) std::swap(out.u, out.v);

  // Truncate to k = min(rows, cols) columns (one-sided Jacobi produces c
  // columns where c = min dimension already, so shapes line up: U rows x k,
  // V cols x k).
  return out;
}

Matrix rank1_approximation(const ConstMatrixView& m) {
  SingularTriplet t = dominant_triplet(m);
  Matrix out(m.rows(), m.cols(), 0.0);
  for (std::size_t j = 0; j < m.cols(); ++j)
    for (std::size_t i = 0; i < m.rows(); ++i)
      out(i, j) = t.sigma * t.u[i] * t.v[j];
  return out;
}

double rank1_defect(const ConstMatrixView& m) {
  double total = 0.0;
  for (std::size_t j = 0; j < m.cols(); ++j)
    for (std::size_t i = 0; i < m.rows(); ++i) total += m(i, j) * m(i, j);
  if (total == 0.0) return 0.0;
  const Matrix r1 = rank1_approximation(m);
  double resid = 0.0;
  for (std::size_t j = 0; j < m.cols(); ++j)
    for (std::size_t i = 0; i < m.rows(); ++i) {
      const double d = m(i, j) - r1(i, j);
      resid += d * d;
    }
  return std::sqrt(resid / total);
}

}  // namespace hetgrid
