#include "mp/virtual_network.hpp"

#include <algorithm>

namespace hetgrid {

VirtualNetwork::VirtualNetwork(std::size_t processors,
                               const NetworkModel& model, TraceSink* sink)
    : model_(model), send_free_(processors, 0.0),
      recv_free_(processors, 0.0), sink_(sink) {
  model_.validate();
  HG_CHECK(processors > 0, "network needs at least one processor");
}

double VirtualNetwork::transfer(std::size_t src, std::size_t dst,
                                std::size_t blocks, double earliest) {
  HG_CHECK(src < send_free_.size() && dst < send_free_.size(),
           "processor id out of range");
  if (src == dst || blocks == 0) return earliest;

  const double duration =
      model_.latency +
      static_cast<double>(blocks) * model_.block_transfer;

  double start = std::max({earliest, send_free_[src], recv_free_[dst]});
  if (model_.topology == Topology::kEthernet) {
    // One shared medium: the transfer also waits for the bus.
    start = std::max(start, bus_free_);
    bus_free_ = start + duration;
  }
  const double done = start + duration;
  send_free_[src] = done;
  recv_free_[dst] = done;
  ++messages_;
  blocks_sent_ += static_cast<double>(blocks);
  trace_span(sink_, TraceEventKind::kSend, src, start, duration, step_,
             "send", static_cast<double>(blocks), dst);
  trace_span(sink_, TraceEventKind::kRecv, dst, start, duration, step_,
             "recv", static_cast<double>(blocks), src);
  return done;
}

double VirtualNetwork::send_free(std::size_t proc) const {
  HG_CHECK(proc < send_free_.size(), "processor id out of range");
  return send_free_[proc];
}

double VirtualNetwork::recv_free(std::size_t proc) const {
  HG_CHECK(proc < recv_free_.size(), "processor id out of range");
  return recv_free_[proc];
}

}  // namespace hetgrid
