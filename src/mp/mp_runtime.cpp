#include "mp/mp_runtime.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>

#include "core/rebalance.hpp"
#include "matrix/cholesky.hpp"
#include "matrix/gemm.hpp"
#include "matrix/lu.hpp"
#include "matrix/qr.hpp"
#include "matrix/trsm.hpp"
#include "mp/block_store.hpp"
#include "mp/virtual_network.hpp"
#include "obs/cycle_estimator.hpp"
#include "obs/imbalance.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/parallel_engine.hpp"
#include "util/task_graph.hpp"

namespace hetgrid {

double MpReport::average_utilization() const {
  if (makespan <= 0.0 || busy.empty()) return 0.0;
  double acc = 0.0;
  for (double b : busy) acc += b / makespan;
  return acc / static_cast<double>(busy.size());
}

namespace {

std::size_t block_count(std::size_t n, std::size_t block) {
  return (n + block - 1) / block;
}
std::size_t block_lo(std::size_t idx, std::size_t block) {
  return idx * block;
}
std::size_t block_len(std::size_t idx, std::size_t block, std::size_t n) {
  return std::min(n - idx * block, block);
}
double vol_frac(std::size_t r, std::size_t c, std::size_t k,
                std::size_t block) {
  const double full = static_cast<double>(block) * static_cast<double>(block) *
                      static_cast<double>(block);
  return static_cast<double>(r) * static_cast<double>(c) *
         static_cast<double>(k) / full;
}

// Task priorities for the dag scheduler: communication copies first (they
// unblock whole dependency subtrees), then panel-gating work, then solves,
// then bulk trailing updates. Priorities only steer the ready queue — they
// can never reorder dependent work, so results are priority-independent.
constexpr int kPrioComm = 3, kPrioPanel = 2, kPrioSolve = 1, kPrioUpdate = 0;

// Shared state for one distributed execution.
//
// Parallel numerics, barrier scheduler: each step's real floating-point
// block updates are collected into `batch` — one task lane per virtual
// processor — and flushed through `engine` at every phase boundary
// (run_batch). A lane's ops run in canonical submission order on one
// worker, and distinct lanes only ever touch their own processor's
// BlockStore, so the arithmetic is bit-identical to the serial path for
// any thread count.
//
// Dag scheduler: the same ops are emitted, in the same host order, into a
// util/task_graph keyed by (processor, block) — run_batch becomes a no-op
// and the block-versioned read/write dependencies alone order the work, so
// step k+1's panel chain overlaps step k's trailing updates. Every
// read-modify-write chain on one block serializes in emission order (WAW),
// which is exactly the barrier scheduler's lane order — hence bit-identical
// results. The host synchronizes only where it does inline math
// (host_sync) and at finish().
//
// Both ways, clocks, busy times, message counters, and trace spans are
// computed exclusively on the host thread, in one shared code path, and
// never depend on the execution schedule — the MpReport and the trace
// stream are bitwise equal across schedulers and thread counts.
struct MpContext {
  const Machine& machine;
  const Distribution2D& dist;
  std::size_t block;
  std::size_t p, q;
  VirtualNetwork net;
  std::vector<BlockStore> store;  // one per processor
  std::vector<double> clock;      // per-processor compute clock
  std::vector<double> busy;
  TraceSink* sink;
  // Installed observation, fetched once (the null-sink contract's single
  // atomic load). When set, compute() feeds the cycle-time estimator and
  // finish() deposits the dag scheduler's task records; nothing about the
  // computed results changes either way.
  RunObservation* obs;
  std::size_t step = 0;
  bool dag;
  // Online rebalancer state (doc/rebalance.md). When `rebalance` is false
  // none of it is touched: owner() falls through to the distribution,
  // cycle_time() skips the trace multiply, and compute() takes no extra
  // sample — runs are bit-identical to pre-rebalance builds.
  bool rebalance;
  RebalanceOptions reb_opts;
  CycleTimeTrace trace;
  // The rebalancer's own estimator: always fed (when rebalancing) on the
  // host thread, independent of any installed RunObservation, so migration
  // decisions never depend on whether the run is being observed.
  CycleTimeEstimator reb_est;
  // Live owner lines: block row bi belongs to grid row row_of[bi], block
  // column bj to grid column col_of[bj] (factored exactly like an aligned
  // distribution, which ring sources and reduction roots rely on). A
  // rebalance rewrites only the trailing entries, so finished panels keep
  // their owners.
  std::vector<std::size_t> row_of, col_of;
  // Physical location of every persistent block, per matrix tag (A/B/C) —
  // what gather() and the migration source lookup use. owner() covers only
  // live trailing blocks; loc also remembers where finished blocks stayed.
  std::vector<std::vector<std::size_t>> loc;
  std::size_t loc_rows = 0, loc_cols = 0;
  std::size_t reb_applied = 0, reb_blocks = 0;
  ParallelEngine engine;
  TaskBatch batch;
  // Erases whose block still has in-flight readers/writers; applied once
  // those tasks drain (poll_erases / finish).
  struct PendingErase {
    std::size_t id;
    BlockKey key;
    std::vector<TaskGraph::TaskId> waits;
  };
  std::vector<PendingErase> pending_erases;
  // Declared last: its destructor waits for in-flight tasks, so on unwind
  // it runs before the stores those tasks' closures reference.
  std::unique_ptr<TaskGraph> graph;

  MpContext(const Machine& m, const Distribution2D& d, std::size_t blk,
            TraceSink* s, const RuntimeOptions& opts)
      : machine(m), dist(d), block(blk), p(d.grid_rows()), q(d.grid_cols()),
        net(p * q, m.net, s), store(p * q), clock(p * q, 0.0),
        busy(p * q, 0.0), sink(s), obs(installed_observation()),
        dag(opts.scheduler == RuntimeOptions::Scheduler::kDag),
        rebalance(opts.rebalance == RuntimeOptions::Rebalance::kPanel),
        reb_opts(opts.rebalance_opts), trace(opts.trace),
        reb_est(opts.estimator),
        engine(dag ? 1 : opts.threads), batch(p * q),
        graph(dag ? std::make_unique<TaskGraph>(opts.threads) : nullptr) {
    m.net.validate();
    HG_CHECK(m.grid.rows() == p && m.grid.cols() == q,
             "machine grid does not match distribution");
    HG_CHECK(blk > 0, "block size must be positive");
    if (graph != nullptr && obs != nullptr) graph->set_observe(true);
  }

  void set_step(std::size_t k) {
    step = k;
    net.set_step(k);
    poll_erases();
    if (obs != nullptr) obs->estimator.panel_boundary(k);
  }

  /// Packs (processor, block) into a task-graph resource key.
  TaskGraph::Key key_of(std::size_t id, BlockKey k) const {
    HG_DCHECK(k.row < (std::uint64_t{1} << 26) &&
                  k.col < (std::uint64_t{1} << 26),
              "block coordinates exceed the task-graph key encoding");
    return (static_cast<std::uint64_t>(id) << 52) |
           (static_cast<std::uint64_t>(k.row) << 26) |
           static_cast<std::uint64_t>(k.col);
  }

  // Emission-order op fusion (dag mode): consecutive ops in the same
  // group — one processor's ops at one priority, or one ring hop's block
  // copies — merge into a single task whose read/write sets are the union
  // of the ops'. The fused ops run in emission order inside one task, and
  // groups register with the scoreboard in emission order (staging holds
  // at most one open group; a new group flushes the previous), so every
  // per-key operation chain is ordered exactly as without fusion and the
  // results stay bit-identical. What changes is granularity: a trailing
  // update is one task per processor instead of one per block, which
  // keeps a worker inside one store's blocks (cache locality) and pays
  // the scheduler's lock once per processor-step instead of once per
  // block. Any host-side dependency query must flush first — host_sync,
  // finish, and erase_block do.
  static constexpr std::uint64_t kGroupProc = std::uint64_t{1} << 62;
  static constexpr std::uint64_t kGroupCopy = std::uint64_t{1} << 61;
  struct FusedOps {
    bool active = false;
    std::uint64_t group = 0;
    const char* name = "";
    int priority = 0;
    double weight = 0.0;          // summed virtual cost of the fused ops
    std::uint64_t tag = TaskGraph::kNoTag;  // executing processor
    std::vector<TaskGraph::Key> reads, writes;
    std::vector<std::function<void()>> ops;
  };
  FusedOps fused;

  void flush_fused() {
    if (!fused.active) return;
    auto dedup = [](std::vector<TaskGraph::Key>& keys) {
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    };
    dedup(fused.reads);
    dedup(fused.writes);
    std::function<void()> body;
    if (fused.ops.size() == 1) {
      body = std::move(fused.ops.front());
    } else {
      body = [ops = std::move(fused.ops)] {
        for (const std::function<void()>& f : ops) f();
      };
    }
    graph->add(fused.name, std::move(fused.reads), std::move(fused.writes),
               std::move(body), fused.priority, {}, fused.weight, fused.tag);
    fused = FusedOps{};
  }

  void stage_op(std::uint64_t group, const char* name, int priority,
                std::vector<TaskGraph::Key> reads,
                std::vector<TaskGraph::Key> writes, std::function<void()> op,
                double weight = 0.0,
                std::uint64_t tag = TaskGraph::kNoTag) {
    if (fused.active && (fused.group != group || fused.priority != priority))
      flush_fused();
    fused.active = true;
    fused.group = group;
    fused.name = name;
    fused.priority = priority;
    fused.weight += weight;
    fused.tag = tag;
    fused.reads.insert(fused.reads.end(), reads.begin(), reads.end());
    fused.writes.insert(fused.writes.end(), writes.begin(), writes.end());
    fused.ops.push_back(std::move(op));
  }

  /// Queues one block-numerics op on processor `id`, declaring the blocks
  /// it reads and writes (a block that is read-modify-written belongs in
  /// `writes` — the write dependency already serializes it against both
  /// the prior writer and prior readers). Views must be resolved by the
  /// caller (on the host thread) so missing-block errors still surface as
  /// clean PreconditionErrors. Under the barrier scheduler the sets are
  /// ignored and the op joins `id`'s lane; under dag it joins the
  /// processor's open fusion group.
  void add_op(std::size_t id, const char* name, int priority,
              std::initializer_list<BlockKey> reads,
              std::initializer_list<BlockKey> writes,
              std::function<void()> op, double weight = 0.0) {
    // Every write key gets a fresh version at emission time: any packed
    // panel of the block's previous bytes becomes unreachable in the pack
    // cache the moment its overwriter is queued (see tag()).
    for (const BlockKey& k : writes) store[id].bump_version(k);
    if (!dag) {
      batch.add(id, std::move(op));
      return;
    }
    std::vector<TaskGraph::Key> r, w;
    r.reserve(reads.size());
    w.reserve(writes.size());
    for (const BlockKey& k : reads) r.push_back(key_of(id, k));
    for (const BlockKey& k : writes) w.push_back(key_of(id, k));
    stage_op(kGroupProc | id, name, priority, std::move(r), std::move(w),
             std::move(op), weight, id);
  }

  /// Barrier scheduler: runs all queued numerics and returns when they are
  /// done (must precede any store put/erase or host read of a block a
  /// queued op writes). Dag scheduler: a no-op — dependencies alone order
  /// the work. The "mp.barriers" counter counts actual host
  /// synchronization points (run_batch here, host_sync/finish for dag), on
  /// the host thread, so it is deterministic for any thread count.
  void run_batch() {
    if (dag) return;
    metric_count("mp.barriers", 1);
    batch.run(engine);
  }

  /// Dag scheduler: blocks the host until every queued op touching `keys`
  /// on processor `id` has finished, and takes synchronous ownership of
  /// them — the partial sync guarding inline host math (panel
  /// factorizations). Unrelated tasks keep running: this is what lets the
  /// panel of step k+1 overlap step k's trailing updates. Barrier
  /// scheduler: a no-op (run_batch already synchronized).
  void host_sync(std::size_t id, const std::vector<BlockKey>& keys) {
    if (!dag) return;
    flush_fused();
    metric_count("mp.barriers", 1);
    std::vector<TaskGraph::Key> w;
    w.reserve(keys.size());
    for (const BlockKey& k : keys) w.push_back(key_of(id, k));
    graph->host_acquire({}, w);
  }

  /// Final synchronization: every queued op completes and all deferred
  /// transient erases are applied. Must precede gather(). (Barrier mode:
  /// nothing is pending by construction.)
  void finish() {
    if (!dag) return;
    flush_fused();
    metric_count("mp.barriers", 1);
    graph->wait_all();
    if (obs != nullptr) obs->tasks = graph->records();
    for (const PendingErase& pe : pending_erases)
      store[pe.id].erase(pe.key);
    pending_erases.clear();
  }

  /// Drops a transient block copy. Dag mode defers the erase while any
  /// queued op still reads or writes the block, so its buffer cannot be
  /// recycled under a running task. Transient keys are step-unique, so a
  /// deferred erase cannot race a re-put of the same key — except through
  /// migration, where a persistent block can leave a processor and land
  /// there again later; copy_block cancels the stale deferral for that
  /// case.
  void erase_block(std::size_t id, BlockKey key) {
    if (dag) {
      flush_fused();  // pending_on must see every queued op
      std::vector<TaskGraph::TaskId> waits =
          graph->pending_on(key_of(id, key));
      if (!waits.empty()) {
        pending_erases.push_back(PendingErase{id, key, std::move(waits)});
        return;
      }
    }
    store[id].erase(key);
  }

  void poll_erases() {
    if (!dag || pending_erases.empty()) return;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending_erases.size(); ++i) {
      PendingErase& pe = pending_erases[i];
      bool drained = true;
      for (const TaskGraph::TaskId t : pe.waits)
        if (!graph->done(t)) {
          drained = false;
          break;
        }
      if (drained) {
        store[pe.id].erase(pe.key);
      } else {
        // Guard against self-move: moving an element onto itself would
        // empty its waits vector, and an empty waits list reads as
        // "drained" on the next poll — freeing a buffer under live tasks.
        if (kept != i) pending_erases[kept] = std::move(pe);
        ++kept;
      }
    }
    pending_erases.resize(kept);
  }

  /// Pack-cache tag for reading `key` on processor `id` at its current
  /// write version — captured on the host at emission time. Safe under the
  /// dag scheduler's reordering: the task-graph dependencies guarantee the
  /// block's bytes match this version when the tagged gemm actually runs,
  /// and any queued overwriter has already bumped past it (add_op above),
  /// so a stale pack is never looked up, let alone returned.
  PackTag tag(std::size_t id, BlockKey key) const {
    return PackTag{BlockStore::pack_id(key), store[id].version(key), true};
  }

  std::size_t pid(std::size_t gi, std::size_t gj) const {
    return gi * q + gj;
  }
  /// Live owner of block (bi, bj): the distribution's owner until a
  /// rebalance rewrites the trailing lines. Kernels only consult this for
  /// blocks at or beyond the current step, where the live lines are always
  /// current (finished panels are reached through loc, not owner()).
  ProcCoord owner(std::size_t bi, std::size_t bj) const {
    if (!rebalance) return dist.owner(bi, bj);
    return ProcCoord{row_of[bi], col_of[bj]};
  }
  std::size_t owner_pid(std::size_t bi, std::size_t bj) const {
    const ProcCoord o = owner(bi, bj);
    return pid(o.row, o.col);
  }
  /// Physical location of a persistent block of matrix tag `which` — where
  /// gather() reads it and migrations pick it up. Equals owner_pid until a
  /// block's line migrates out from under a *finished* panel, which keeps
  /// its blocks (and this entry) in place.
  std::size_t location(std::size_t which, std::size_t bi,
                       std::size_t bj) const {
    if (!rebalance) return owner_pid(bi, bj);
    return loc[which][bi * loc_cols + bj];
  }
  double cycle_time(std::size_t id) const {
    const double t = machine.grid(id / q, id % q);
    // No multiply on the empty trace: drift-free runs stay bit-identical.
    return trace.empty() ? t : t * trace.factor(id, step);
  }

  /// Arms the rebalancer for a kernel over an nbr x nbc block grid with
  /// `tags` persistent matrices (A, or A/B/C for MMM). Must run before
  /// scatter() so the location tables capture the initial placement.
  void init_rebalance(std::size_t nbr, std::size_t nbc, std::size_t tags) {
    if (!rebalance) return;
    HG_CHECK(neighbor_census(dist).aligned,
             "rebalance=panel requires an aligned (grid-pattern) "
             "distribution");
    loc_rows = nbr;
    loc_cols = nbc;
    row_of.resize(nbr);
    col_of.resize(nbc);
    for (std::size_t bi = 0; bi < nbr; ++bi)
      row_of[bi] = dist.owner(bi, 0).row;
    for (std::size_t bj = 0; bj < nbc; ++bj)
      col_of[bj] = dist.owner(0, bj).col;
    loc.assign(tags, std::vector<std::size_t>(nbr * nbc, SIZE_MAX));
  }

  /// One matrix's trailing sub-rectangle to migrate when a rebalance acts.
  struct MigrateSet {
    std::size_t which;
    std::size_t row_lo, row_hi, col_lo, col_hi;
    bool lower_only;
  };

  /// The panel-boundary rebalance hook: re-solves the allocation from the
  /// internal estimator's rates, and when the plan_rebalance thresholds
  /// clear, rewrites the trailing owner lines and migrates the affected
  /// blocks. Migrations are ordinary block copies — under the dag
  /// scheduler they become kPrioComm tasks that overlap the previous
  /// step's trailing updates; in virtual time the destination clock waits
  /// for the transfer. Everything here runs on the host thread as a pure
  /// function of the boundary snapshot, so the migration schedule is
  /// bit-identical across thread counts and schedulers.
  void maybe_rebalance(std::size_t k, RebalanceRegion region,
                       const std::vector<MigrateSet>& sets) {
    if (!rebalance || k == 0) return;
    // Trailing region smaller than the grid: nothing left to balance (and
    // the per-line >= 1 slot rounding would be infeasible).
    if (region.row_hi - region.row_lo < p ||
        region.col_hi - region.col_lo < q)
      return;
    metric_count("rebalance.resolves", 1);
    region.per_block_move_cost =
        machine.net.latency + machine.net.block_transfer;
    const CycleTimeGrid rates =
        estimated_rate_grid(reb_est.estimates(), machine.grid,
                            ObsOp::kUpdate, reb_est.options().min_samples);
    // Plan over the trailing sub-maps only, so the slot rounding spends
    // every slot on rows/columns that still have work (region indices
    // shift to the sub-map origin; row_lo == col_lo keeps lower_only
    // triangles aligned).
    const std::vector<std::size_t> sub_r(row_of.begin() + region.row_lo,
                                         row_of.begin() + region.row_hi);
    const std::vector<std::size_t> sub_c(col_of.begin() + region.col_lo,
                                         col_of.begin() + region.col_hi);
    RebalanceRegion local = region;
    local.row_hi -= local.row_lo;
    local.col_hi -= local.col_lo;
    local.row_lo = 0;
    local.col_lo = 0;
    const RebalanceDecision d =
        plan_rebalance(rates, sub_r, sub_c, local, reb_opts);
    if (!d.act) return;

    for (std::size_t bi = region.row_lo; bi < region.row_hi; ++bi)
      row_of[bi] = d.row_map[bi - region.row_lo];
    for (std::size_t bj = region.col_lo; bj < region.col_hi; ++bj)
      col_of[bj] = d.col_map[bj - region.col_lo];

    // Migrate every set block whose owner changed: read at the old owner,
    // write at the new one, erase the stale copy (bumping its write epoch,
    // so the old owner's packed panels of it become unreachable).
    std::vector<double> arrive(p * q, 0.0);
    std::size_t moved = 0;
    for (const MigrateSet& s : sets) {
      for (std::size_t bi = s.row_lo; bi < s.row_hi; ++bi) {
        for (std::size_t bj = s.col_lo; bj < s.col_hi; ++bj) {
          if (s.lower_only && bj > bi) continue;
          std::size_t& cur = loc[s.which][bi * loc_cols + bj];
          const std::size_t dst = pid(row_of[bi], col_of[bj]);
          if (cur == dst) continue;
          const BlockKey key{s.which * loc_rows + bi, bj};
          const double arrival = net.transfer(cur, dst, 1, clock[cur]);
          copy_block(cur, dst, key);
          erase_block(cur, key);
          cur = dst;
          arrive[dst] = std::max(arrive[dst], arrival);
          ++moved;
        }
      }
    }
    // The destinations cannot compute on migrated blocks before they land.
    for (std::size_t id = 0; id < p * q; ++id)
      clock[id] = std::max(clock[id], arrive[id]);

    reb_applied += 1;
    reb_blocks += moved;
    metric_count("rebalance.migrations", 1);
    metric_count("rebalance.blocks_moved", moved);
    metric_count("rebalance.bytes_moved", moved * block * block * 8);
    if (obs != nullptr)
      obs->rebalances.push_back(RebalanceEvent{k, d.current_sweep,
                                               d.proposed_sweep,
                                               d.migration_cost, moved});
  }

  /// Lands a copy of `key` (present at `from`) in `to`'s store, recycling
  /// a pooled buffer when one matches the shape. Barrier mode copies
  /// synchronously on the host; dag mode queues the copy as a task reading
  /// (from, key) and writing (to, key). When the destination already holds
  /// the block (a broadcast restoring an owner's blocks), the existing
  /// buffer is written in place — a put would free a buffer that pending
  /// readers may still be using, and the write dependency already orders
  /// the copy after them.
  void copy_block(std::size_t from, std::size_t to, BlockKey key) {
    const ConstMatrixView src = store[from].at(key);
    // A landing copy re-establishes (to, key) as live: cancel any deferred
    // erase left from an earlier migration away from `to`, or it would
    // drain later (poll_erases is worker-timing dependent) and delete the
    // re-landed block. The stale buffer's readers still order the in-place
    // write below through the (to, key) write dependency.
    if (dag && !pending_erases.empty())
      pending_erases.erase(
          std::remove_if(pending_erases.begin(), pending_erases.end(),
                         [&](const PendingErase& pe) {
                           return pe.id == to && pe.key == key;
                         }),
          pending_erases.end());
    if (!dag) {
      Matrix copy = store[to].acquire(src.rows(), src.cols());
      copy.view().copy_from(src);
      store[to].put(key, std::move(copy));
      return;
    }
    if (!store[to].contains(key))
      store[to].put(key, store[to].acquire(src.rows(), src.cols()));
    const MatrixView dst = store[to].at(key);
    HG_INTERNAL_CHECK(dst.rows() == src.rows() && dst.cols() == src.cols(),
                      "copy_block into a block of different shape");
    store[to].bump_version(key);  // in-place write: put() did not bump
    stage_op(kGroupCopy | (static_cast<std::uint64_t>(from) << 24) | to,
             "mp.copy", kPrioComm, {key_of(from, key)}, {key_of(to, key)},
             [src, dst] { dst.copy_from(src); }, 0.0, to);
  }

  /// Ring-broadcasts the listed blocks (all already present at grid
  /// position (gi, src_gj)) along grid row gi, starting no earlier than
  /// `start`. `ready[id]` is updated with the time the bundle is fully
  /// available at each processor of the row; copies land in the
  /// receivers' stores.
  void ring_broadcast_row(std::size_t gi, std::size_t src_gj,
                          const std::vector<BlockKey>& keys,
                          double start, std::vector<double>& ready) {
    const std::size_t src = pid(gi, src_gj);
    ready[src] = std::max(ready[src], start);
    if (q == 1 || keys.empty()) return;
    double upstream = ready[src];
    for (std::size_t hop = 1; hop < q; ++hop) {
      const std::size_t from = pid(gi, (src_gj + hop - 1) % q);
      const std::size_t to = pid(gi, (src_gj + hop) % q);
      const double arrival =
          net.transfer(from, to, keys.size(), upstream);
      for (const BlockKey& k : keys) copy_block(from, to, k);
      ready[to] = std::max(ready[to], arrival);
      upstream = arrival;
    }
  }

  /// Same along a grid column.
  void ring_broadcast_col(std::size_t gj, std::size_t src_gi,
                          const std::vector<BlockKey>& keys,
                          double start, std::vector<double>& ready) {
    const std::size_t src = pid(src_gi, gj);
    ready[src] = std::max(ready[src], start);
    if (p == 1 || keys.empty()) return;
    double upstream = ready[src];
    for (std::size_t hop = 1; hop < p; ++hop) {
      const std::size_t from = pid((src_gi + hop - 1) % p, gj);
      const std::size_t to = pid((src_gi + hop) % p, gj);
      const double arrival =
          net.transfer(from, to, keys.size(), upstream);
      for (const BlockKey& k : keys) copy_block(from, to, k);
      ready[to] = std::max(ready[to], arrival);
      upstream = arrival;
    }
  }

  /// Copies one block to another processor right away (feeder transfer for
  /// misaligned distributions: a panel block that a foreign grid row/column
  /// needs is first shipped to that line's ring source). Returns arrival.
  double feeder(std::size_t from, std::size_t to, BlockKey key,
                double start) {
    if (from == to) return start;
    const double arrival = net.transfer(from, to, 1, start);
    copy_block(from, to, key);
    return arrival;
  }

  /// Runs `seconds` of compute on `id` that may not start before `ready`.
  /// `op` / `units` tag the charge for the cycle-time estimator: `units`
  /// is the cycle-time-free flop measure (costs.X * vol_frac sums), so
  /// seconds / units is exactly the effective t_ij this charge assumed.
  void compute(std::size_t id, double ready, double seconds,
               const char* name, ObsOp op, double units) {
    const double start = std::max(clock[id], ready);
    clock[id] = start + seconds;
    busy[id] += seconds;
    trace_span(sink, TraceEventKind::kComputeBlock, id, start, seconds, step,
               name);
    if (rebalance) reb_est.sample(id, op, units, seconds, step);
    if (obs != nullptr) obs->estimator.sample(id, op, units, seconds, step);
  }

  /// Observation record for inline host math (panel factorizations): keeps
  /// the weighted critical path connected across the host_sync that cut
  /// the key history. No-op unless observing under the dag scheduler.
  void note_host_work(std::size_t id, const std::vector<BlockKey>& keys,
                      double seconds, const char* name) {
    if (graph == nullptr || obs == nullptr) return;
    std::vector<TaskGraph::Key> w;
    w.reserve(keys.size());
    for (const BlockKey& k : keys) w.push_back(key_of(id, k));
    graph->note_host_work(w, seconds, name, id);
  }

  MpReport report() const {
    MpReport rep;
    rep.clock = clock;
    rep.busy = busy;
    rep.makespan = *std::max_element(clock.begin(), clock.end());
    rep.messages = net.messages_sent();
    rep.blocks_moved = net.bytes_blocks_sent();
    rep.rebalances = reb_applied;
    rep.rebalance_blocks = reb_blocks;
    return rep;
  }
};

// Scatters the global matrix `m` (tagged by `which` to disambiguate A/B/C
// in the stores: block keys get a row offset of which * nbr_total) to the
// owners. Returns nothing; timing-free setup, as in ScaLAPACK where data
// is assumed distributed from the start.
void scatter(MpContext& ctx, const ConstMatrixView& m, std::size_t which,
             std::size_t nbr, std::size_t nbc) {
  // Owned blocks plus one row and one column panel of transient copies.
  const std::size_t procs = ctx.p * ctx.q;
  for (std::size_t id = 0; id < procs; ++id)
    ctx.store[id].reserve(nbr * nbc / procs + nbr + nbc + 8);
  // Barrier lanes see at most one op per owned block and step.
  ctx.batch.hint(nbr * nbc / procs + 4);
  for (std::size_t bi = 0; bi < nbr; ++bi) {
    const std::size_t ilo = block_lo(bi, ctx.block);
    const std::size_t ilen = block_len(bi, ctx.block, m.rows());
    for (std::size_t bj = 0; bj < nbc; ++bj) {
      const std::size_t jlo = block_lo(bj, ctx.block);
      const std::size_t jlen = block_len(bj, ctx.block, m.cols());
      Matrix blk(ilen, jlen);
      blk.view().copy_from(m.block(ilo, jlo, ilen, jlen));
      const std::size_t id = ctx.owner_pid(bi, bj);
      if (ctx.rebalance && which < ctx.loc.size())
        ctx.loc[which][bi * ctx.loc_cols + bj] = id;
      ctx.store[id].put(BlockKey{which * nbr + bi, bj}, std::move(blk));
    }
  }
}

void gather(MpContext& ctx, MatrixView m, std::size_t which,
            std::size_t nbr, std::size_t nbc) {
  for (std::size_t bi = 0; bi < nbr; ++bi) {
    const std::size_t ilo = block_lo(bi, ctx.block);
    const std::size_t ilen = block_len(bi, ctx.block, m.rows());
    for (std::size_t bj = 0; bj < nbc; ++bj) {
      const std::size_t jlo = block_lo(bj, ctx.block);
      const std::size_t jlen = block_len(bj, ctx.block, m.cols());
      m.block(ilo, jlo, ilen, jlen)
          .copy_from(ctx.store[ctx.location(which, bi, bj)].at(
              BlockKey{which * nbr + bi, bj}));
    }
  }
}

constexpr std::size_t kTagA = 0, kTagB = 1, kTagC = 2;
// QR-only transients: the larft T factor, the unit-lower diagonal V block,
// per-grid-row partial W accumulators, and the reduced Y = T^T W panels.
constexpr std::size_t kTagT = 3, kTagV = 4, kTagW = 5, kTagY = 6;

// Element-wise dst += src for the QR W-reduction (runs on the reduction
// root's task lane, in ascending contributor order, so the summation order
// is identical for any thread count).
void add_in_place(const ConstMatrixView& src, MatrixView dst) {
  for (std::size_t j = 0; j < dst.cols(); ++j)
    for (std::size_t i = 0; i < dst.rows(); ++i) dst(i, j) += src(i, j);
}

}  // namespace

MpReport run_mp_mmm(const Machine& machine, const Distribution2D& dist,
                    const ConstMatrixView& a, const ConstMatrixView& b,
                    MatrixView c, std::size_t block,
                    const KernelCosts& costs, TraceSink* sink,
                    const RuntimeOptions& opts) {
  ProfScope prof_span("mp.mmm");
  const std::size_t n = a.rows();
  HG_CHECK(a.cols() == n && b.rows() == n && b.cols() == n &&
               c.rows() == n && c.cols() == n,
           "run_mp_mmm needs square same-size A, B, C");
  MpContext ctx(machine, dist, block, sink, opts);
  const std::size_t nb = block_count(n, block);
  const std::size_t procs = ctx.p * ctx.q;

  ctx.init_rebalance(nb, nb, 3);
  scatter(ctx, a, kTagA, nb, nb);
  scatter(ctx, b, kTagB, nb, nb);
  c.fill(0.0);
  scatter(ctx, c, kTagC, nb, nb);

  std::vector<double> a_ready(procs), b_ready(procs);
  std::vector<std::vector<BlockKey>> row_keys(ctx.p), col_keys(ctx.q);
  std::vector<double> row_start(ctx.p), col_start(ctx.q);
  std::vector<std::size_t> a_src(ctx.p, 0), b_src(ctx.q, 0);
  std::vector<char> need_rows(ctx.p), need_cols(ctx.q);

  for (std::size_t k = 0; k < nb; ++k) {
    ctx.set_step(k);
    // Rebalance over the full C sweep (every step updates all of C); an
    // owner change drags the C block plus the A/B panels still to come.
    ctx.maybe_rebalance(
        k,
        RebalanceRegion{0, nb, 0, nb, false, static_cast<double>(nb - k),
                        0.0, 3.0},
        {{kTagA, 0, nb, k, nb, false},
         {kTagB, k, nb, 0, nb, false},
         {kTagC, 0, nb, 0, nb, false}});
    std::fill(a_ready.begin(), a_ready.end(), 0.0);
    std::fill(b_ready.begin(), b_ready.end(), 0.0);
    std::fill(row_start.begin(), row_start.end(), 0.0);
    std::fill(col_start.begin(), col_start.end(), 0.0);
    for (auto& v : row_keys) v.clear();
    for (auto& v : col_keys) v.clear();

    // A block (bi, k) must reach every grid row that owns some C block of
    // block row bi; a B block (k, bj) every grid column owning C blocks of
    // block column bj. With an aligned distribution that is exactly the
    // block's own grid row/column; a misaligned one (Kalinov–Lastovetsky)
    // additionally ships blocks to foreign lines first (feeder transfers)
    // — the extra messages Figure 3 of the paper warns about. Each line's
    // ring source is fixed to the home position of the line's first key;
    // all other keys are fed to it before the ring starts.
    bool a_src_set_row[64] = {};  // p, q <= 64 enforced by practical grids
    HG_CHECK(ctx.p <= 64 && ctx.q <= 64, "grid too large for mp runtime");
    for (std::size_t bi = 0; bi < nb; ++bi) {
      const BlockKey key{kTagA * nb + bi, k};
      const ProcCoord home = ctx.owner(bi, k);
      std::fill(need_rows.begin(), need_rows.end(), 0);
      for (std::size_t bj = 0; bj < nb; ++bj)
        need_rows[ctx.owner(bi, bj).row] = 1;
      for (std::size_t gi = 0; gi < ctx.p; ++gi) {
        if (!need_rows[gi]) continue;
        if (!a_src_set_row[gi]) {
          a_src[gi] = home.col;
          a_src_set_row[gi] = true;
        }
        if (ctx.pid(home.row, home.col) != ctx.pid(gi, a_src[gi])) {
          const double arrival =
              ctx.feeder(ctx.pid(home.row, home.col),
                         ctx.pid(gi, a_src[gi]), key, 0.0);
          row_start[gi] = std::max(row_start[gi], arrival);
        }
        row_keys[gi].push_back(key);
      }
    }
    bool b_src_set_col[64] = {};
    for (std::size_t bj = 0; bj < nb; ++bj) {
      const BlockKey key{kTagB * nb + k, bj};
      const ProcCoord home = ctx.owner(k, bj);
      std::fill(need_cols.begin(), need_cols.end(), 0);
      for (std::size_t bi = 0; bi < nb; ++bi)
        need_cols[ctx.owner(bi, bj).col] = 1;
      for (std::size_t gj = 0; gj < ctx.q; ++gj) {
        if (!need_cols[gj]) continue;
        if (!b_src_set_col[gj]) {
          b_src[gj] = home.row;
          b_src_set_col[gj] = true;
        }
        if (ctx.pid(home.row, home.col) != ctx.pid(b_src[gj], gj)) {
          const double arrival =
              ctx.feeder(ctx.pid(home.row, home.col),
                         ctx.pid(b_src[gj], gj), key, 0.0);
          col_start[gj] = std::max(col_start[gj], arrival);
        }
        col_keys[gj].push_back(key);
      }
    }

    for (std::size_t gi = 0; gi < ctx.p; ++gi)
      ctx.ring_broadcast_row(gi, a_src[gi], row_keys[gi], row_start[gi],
                             a_ready);
    for (std::size_t gj = 0; gj < ctx.q; ++gj)
      ctx.ring_broadcast_col(gj, b_src[gj], col_keys[gj], col_start[gj],
                             b_ready);

    // Local updates: C_IJ += A_Ik * B_kJ on owned blocks. Clocks are
    // charged on the host in canonical order; the GEMMs fan out one task
    // lane per processor (each lane reads and writes only its own store).
    const std::size_t klen = block_len(k, block, n);
    for (std::size_t id = 0; id < procs; ++id) {
      double work = 0.0, units = 0.0;
      const double ready = std::max(a_ready[id], b_ready[id]);
      for (std::size_t bi = 0; bi < nb; ++bi) {
        for (std::size_t bj = 0; bj < nb; ++bj) {
          if (ctx.owner_pid(bi, bj) != id) continue;
          const std::size_t ilen = block_len(bi, block, n);
          const std::size_t jlen = block_len(bj, block, n);
          const BlockKey a_key{kTagA * nb + bi, k};
          const BlockKey b_key{kTagB * nb + k, bj};
          const BlockKey c_key{kTagC * nb + bi, bj};
          const ConstMatrixView av = ctx.store[id].at(a_key);
          const ConstMatrixView bv = ctx.store[id].at(b_key);
          const MatrixView cv = ctx.store[id].at(c_key);
          // Both operands are panel blocks reused across this step's
          // updates on this processor: pack each once per (block, version).
          PackedPanelCache* const cache = &ctx.store[id].pack_cache();
          const PackTag at = ctx.tag(id, a_key);
          const PackTag bt = ctx.tag(id, b_key);
          const double op_units =
              costs.update * vol_frac(ilen, jlen, klen, block);
          ctx.add_op(id, "mp.gemm", kPrioUpdate, {a_key, b_key}, {c_key},
                     [av, at, bv, bt, cv, cache] {
                       gemm_cached(Trans::No, Trans::No, 1.0, av, at, bv, bt,
                                   1.0, cv, cache);
                     },
                     ctx.cycle_time(id) * op_units);
          units += op_units;
          work += ctx.cycle_time(id) * op_units;
        }
      }
      if (work > 0.0)
        ctx.compute(id, ready, work, "update", ObsOp::kUpdate, units);
    }
    ctx.run_batch();

    // Drop transient panel copies (keep owned originals).
    for (std::size_t id = 0; id < procs; ++id) {
      for (std::size_t bi = 0; bi < nb; ++bi)
        if (ctx.owner_pid(bi, k) != id)
          ctx.erase_block(id, BlockKey{kTagA * nb + bi, k});
      for (std::size_t bj = 0; bj < nb; ++bj)
        if (ctx.owner_pid(k, bj) != id)
          ctx.erase_block(id, BlockKey{kTagB * nb + k, bj});
    }
  }

  ctx.finish();
  gather(ctx, c, kTagC, nb, nb);
  return ctx.report();
}

MpReport run_mp_lu(const Machine& machine, const Distribution2D& dist,
                   MatrixView a, std::size_t block,
                   const KernelCosts& costs, bool lookahead,
                   TraceSink* sink, const RuntimeOptions& opts) {
  ProfScope prof_span("mp.lu");
  const std::size_t n = a.rows();
  HG_CHECK(a.cols() == n, "run_mp_lu needs a square matrix");
  // LU's row/column panels must each live inside one grid row/column for
  // the ring broadcasts below to have a single source — exactly the
  // paper's alignment condition. Misaligned distributions (K–L) are not
  // LU-capable without extra redistribution messages.
  HG_CHECK(neighbor_census(dist).aligned,
           "run_mp_lu requires an aligned (grid-pattern) distribution");
  MpContext ctx(machine, dist, block, sink, opts);
  const std::size_t nb = block_count(n, block);
  const std::size_t procs = ctx.p * ctx.q;

  ctx.init_rebalance(nb, nb, 1);
  scatter(ctx, a, kTagA, nb, nb);
  MpReport early;

  std::vector<double> diag_ready(procs), l_ready(procs), u_ready(procs);
  std::vector<std::vector<BlockKey>> row_keys(ctx.p), col_keys(ctx.q);
  // Lookahead: virtual time deferred from the previous step's non-critical
  // trailing work (the arithmetic itself always runs in canonical order).
  std::vector<double> deferred(procs, 0.0);
  std::vector<double> deferred_ready(procs, 0.0);
  std::vector<double> deferred_units(procs, 0.0);

  for (std::size_t k = 0; k < nb; ++k) {
    ctx.set_step(k);
    // Rebalance the trailing submatrix [k, nb)^2; the shrinking trailing
    // sweep repays migration over roughly (nb - k) / 3 full sweeps.
    ctx.maybe_rebalance(
        k,
        RebalanceRegion{k, nb, k, nb, false,
                        static_cast<double>(nb - k) / 3.0, 0.0, 1.0},
        {{kTagA, k, nb, k, nb, false}});
    const std::size_t klen = block_len(k, block, n);
    const ProcCoord diag = ctx.owner(k, k);
    const std::size_t diag_id = ctx.pid(diag.row, diag.col);
    const BlockKey diag_key{kTagA * nb + k, k};

    // --- Factor the diagonal block at its owner (host thread: its result
    // gates everything below). Dag mode waits only for the ops touching
    // this one block — the previous step's other trailing updates keep
    // running underneath the factorization, which is the lookahead overlap
    // the barrier scheduler can only model in virtual time.
    ctx.host_sync(diag_id, {diag_key});
    ctx.store[diag_id].bump_version(diag_key);  // in-place host write
    if (!lu_factor_nopivot(ctx.store[diag_id].at(diag_key))) {
      ctx.finish();
      early = ctx.report();
      early.factorized = false;
      gather(ctx, a, kTagA, nb, nb);
      return early;
    }
    const double panel_units =
        costs.panel_factor * vol_frac(klen, klen, klen, block);
    ctx.compute(diag_id, 0.0, ctx.cycle_time(diag_id) * panel_units, "panel",
                ObsOp::kPanel, panel_units);
    ctx.note_host_work(diag_id, {diag_key},
                       ctx.cycle_time(diag_id) * panel_units, "panel");

    // --- Broadcast the diagonal block down its grid column (for the L21
    // solves) and note its availability.
    std::fill(diag_ready.begin(), diag_ready.end(), 0.0);
    ctx.ring_broadcast_col(diag.col, diag.row, {diag_key},
                           ctx.clock[diag_id], diag_ready);

    // --- L21 solves: owners of blocks (I, k), I > k. One task lane per
    // owner; every lane reads its own diag copy and writes its own blocks.
    for (std::size_t bi = k + 1; bi < nb; ++bi) {
      const std::size_t id = ctx.owner_pid(bi, k);
      const std::size_t ilen = block_len(bi, block, n);
      const BlockKey l_key{kTagA * nb + bi, k};
      const ConstMatrixView dv = ctx.store[id].at(diag_key);
      const MatrixView lv = ctx.store[id].at(l_key);
      const double op_units =
          costs.panel_factor * vol_frac(ilen, klen, klen, block);
      ctx.add_op(id, "mp.trsm", kPrioSolve, {diag_key}, {l_key},
                 [dv, lv] { trsm_right_upper(dv, lv); },
                 ctx.cycle_time(id) * op_units);
      ctx.compute(id, diag_ready[id], ctx.cycle_time(id) * op_units,
                  "l-solve", ObsOp::kSolve, op_units);
    }
    ctx.run_batch();

    // --- Horizontal broadcast of the L panel (diag + L21) per grid row.
    std::fill(l_ready.begin(), l_ready.end(), 0.0);
    for (auto& v : row_keys) v.clear();
    for (std::size_t bi = k; bi < nb; ++bi)
      row_keys[ctx.owner(bi, k).row].push_back(
          BlockKey{kTagA * nb + bi, k});
    for (std::size_t gi = 0; gi < ctx.p; ++gi)
      ctx.ring_broadcast_row(gi, diag.col, row_keys[gi],
                             ctx.clock[ctx.pid(gi, diag.col)], l_ready);

    // --- U12 solves: owners of (k, J), J > k need L11 (came with the L
    // panel broadcast along their row).
    for (std::size_t bj = k + 1; bj < nb; ++bj) {
      const std::size_t id = ctx.owner_pid(k, bj);
      const std::size_t jlen = block_len(bj, block, n);
      const BlockKey u_key{kTagA * nb + k, bj};
      const ConstMatrixView dv = ctx.store[id].at(diag_key);
      const MatrixView uv = ctx.store[id].at(u_key);
      const double op_units = costs.trsm * vol_frac(klen, jlen, klen, block);
      ctx.add_op(id, "mp.trsm", kPrioSolve, {diag_key}, {u_key},
                 [dv, uv] { trsm_left_lower_unit(dv, uv); },
                 ctx.cycle_time(id) * op_units);
      ctx.compute(id, l_ready[id], ctx.cycle_time(id) * op_units, "u-solve",
                  ObsOp::kSolve, op_units);
    }
    ctx.run_batch();

    // --- Vertical broadcast of the U panel per grid column.
    std::fill(u_ready.begin(), u_ready.end(), 0.0);
    for (auto& v : col_keys) v.clear();
    for (std::size_t bj = k + 1; bj < nb; ++bj)
      col_keys[ctx.owner(k, bj).col].push_back(
          BlockKey{kTagA * nb + k, bj});
    for (std::size_t gj = 0; gj < ctx.q; ++gj)
      ctx.ring_broadcast_col(gj, diag.row, col_keys[gj],
                             ctx.clock[ctx.pid(diag.row, gj)], u_ready);

    // --- Settle the previous step's deferred (non-critical) work before
    // this step's trailing phase: the panel and solves above already went
    // out ahead of it — that is the lookahead.
    for (std::size_t id = 0; id < procs; ++id) {
      if (deferred[id] > 0.0) {
        ctx.compute(id, deferred_ready[id], deferred[id], "update-deferred",
                    ObsOp::kUpdate, deferred_units[id]);
        deferred[id] = 0.0;
        deferred_ready[id] = 0.0;
        deferred_units[id] = 0.0;
      }
    }

    // --- Trailing updates A_IJ -= L_Ik * U_kJ on owned blocks. With
    // lookahead, the blocks the next panel needs (block column/row k+1)
    // are charged on the critical path now; the rest is deferred to after
    // the next step's panel phase. The deferral is pure virtual-time
    // bookkeeping — the GEMM tasks always run in this step's batch, in
    // canonical order per processor.
    for (std::size_t id = 0; id < procs; ++id) {
      double work_next = 0.0, work_rest = 0.0;
      double units_next = 0.0, units_rest = 0.0;
      const double ready = std::max(l_ready[id], u_ready[id]);
      for (std::size_t bi = k + 1; bi < nb; ++bi) {
        for (std::size_t bj = k + 1; bj < nb; ++bj) {
          if (ctx.owner_pid(bi, bj) != id) continue;
          const std::size_t ilen = block_len(bi, block, n);
          const std::size_t jlen = block_len(bj, block, n);
          const BlockKey l_key{kTagA * nb + bi, k};
          const BlockKey u_key{kTagA * nb + k, bj};
          const BlockKey t_key{kTagA * nb + bi, bj};
          const ConstMatrixView lv = ctx.store[id].at(l_key);
          const ConstMatrixView uv = ctx.store[id].at(u_key);
          const MatrixView tv = ctx.store[id].at(t_key);
          // The L block is reused across this block row's updates, the U
          // block across the block column's: pack each once per step.
          PackedPanelCache* const cache = &ctx.store[id].pack_cache();
          const PackTag lt = ctx.tag(id, l_key);
          const PackTag ut = ctx.tag(id, u_key);
          // Next-panel blocks (column / row k + 1) run at panel priority
          // so the dag releases step k + 1's critical chain first — the
          // wall-clock counterpart of the virtual-time lookahead below.
          const int prio = (bi == k + 1 || bj == k + 1) ? kPrioPanel
                                                        : kPrioUpdate;
          const double op_units =
              costs.update * vol_frac(ilen, jlen, klen, block);
          ctx.add_op(id, "mp.gemm", prio, {l_key, u_key}, {t_key},
                     [lv, lt, uv, ut, tv, cache] {
                       gemm_cached(Trans::No, Trans::No, -1.0, lv, lt, uv,
                                   ut, 1.0, tv, cache);
                     },
                     ctx.cycle_time(id) * op_units);
          const double cost = ctx.cycle_time(id) * op_units;
          if (lookahead && bi != k + 1 && bj != k + 1) {
            work_rest += cost;
            units_rest += op_units;
          } else {
            work_next += cost;
            units_next += op_units;
          }
        }
      }
      if (work_next > 0.0)
        ctx.compute(id, ready, work_next, "update", ObsOp::kUpdate,
                    units_next);
      if (work_rest > 0.0) {
        deferred[id] += work_rest;
        deferred_units[id] += units_rest;
        deferred_ready[id] = std::max(deferred_ready[id], ready);
      }
    }
    ctx.run_batch();

    // --- Drop transient copies of this step's panels.
    for (std::size_t id = 0; id < procs; ++id) {
      for (std::size_t bi = k; bi < nb; ++bi)
        if (ctx.owner_pid(bi, k) != id)
          ctx.erase_block(id, BlockKey{kTagA * nb + bi, k});
      for (std::size_t bj = k + 1; bj < nb; ++bj)
        if (ctx.owner_pid(k, bj) != id)
          ctx.erase_block(id, BlockKey{kTagA * nb + k, bj});
    }
  }

  ctx.finish();
  gather(ctx, a, kTagA, nb, nb);
  return ctx.report();
}

MpReport run_mp_cholesky(const Machine& machine, const Distribution2D& dist,
                         MatrixView a, std::size_t block,
                         const KernelCosts& costs, TraceSink* sink,
                         const RuntimeOptions& opts) {
  ProfScope prof_span("mp.cholesky");
  const std::size_t n = a.rows();
  HG_CHECK(a.cols() == n, "run_mp_cholesky needs a square matrix");
  HG_CHECK(neighbor_census(dist).aligned,
           "run_mp_cholesky requires an aligned distribution");
  MpContext ctx(machine, dist, block, sink, opts);
  const std::size_t nb = block_count(n, block);
  const std::size_t procs = ctx.p * ctx.q;

  ctx.init_rebalance(nb, nb, 1);
  scatter(ctx, a, kTagA, nb, nb);

  std::vector<double> diag_ready(procs), l_ready(procs), c_ready(procs);
  std::vector<std::vector<BlockKey>> row_keys(ctx.p);

  for (std::size_t k = 0; k < nb; ++k) {
    ctx.set_step(k);
    // Rebalance the lower trailing triangle (Cholesky touches only
    // bj <= bi); row_lo == col_lo keeps the triangle test aligned.
    ctx.maybe_rebalance(
        k,
        RebalanceRegion{k, nb, k, nb, true,
                        static_cast<double>(nb - k) / 3.0, 0.0, 1.0},
        {{kTagA, k, nb, k, nb, true}});
    const std::size_t klen = block_len(k, block, n);
    const ProcCoord diag = ctx.owner(k, k);
    const std::size_t diag_id = ctx.pid(diag.row, diag.col);
    const BlockKey diag_key{kTagA * nb + k, k};

    // --- Factor the diagonal block (host thread; dag mode waits only for
    // the ops touching this block, overlapping the rest of the previous
    // step's trailing update).
    ctx.host_sync(diag_id, {diag_key});
    ctx.store[diag_id].bump_version(diag_key);  // in-place host write
    if (!cholesky_factor_unblocked(ctx.store[diag_id].at(diag_key))) {
      ctx.finish();
      MpReport rep = ctx.report();
      rep.factorized = false;
      gather(ctx, a, kTagA, nb, nb);
      return rep;
    }
    const double panel_units =
        costs.chol_factor * vol_frac(klen, klen, klen, block);
    ctx.compute(diag_id, 0.0, ctx.cycle_time(diag_id) * panel_units, "panel",
                ObsOp::kPanel, panel_units);
    ctx.note_host_work(diag_id, {diag_key},
                       ctx.cycle_time(diag_id) * panel_units, "panel");

    // --- Diagonal block down its grid column for the L21 solves.
    std::fill(diag_ready.begin(), diag_ready.end(), 0.0);
    ctx.ring_broadcast_col(diag.col, diag.row, {diag_key},
                           ctx.clock[diag_id], diag_ready);

    // --- L21 solves: A_Ik := A_Ik * inv(L11)^T, one task lane per owner.
    for (std::size_t bi = k + 1; bi < nb; ++bi) {
      const std::size_t id = ctx.owner_pid(bi, k);
      const std::size_t ilen = block_len(bi, block, n);
      const BlockKey l_key{kTagA * nb + bi, k};
      const ConstMatrixView dv = ctx.store[id].at(diag_key);
      const MatrixView lv = ctx.store[id].at(l_key);
      const double op_units =
          costs.chol_factor * vol_frac(ilen, klen, klen, block);
      ctx.add_op(id, "mp.trsm", kPrioSolve, {diag_key}, {l_key},
                 [dv, lv] { trsm_right_lower_transposed(dv, lv); },
                 ctx.cycle_time(id) * op_units);
      ctx.compute(id, diag_ready[id], ctx.cycle_time(id) * op_units,
                  "l-solve", ObsOp::kSolve, op_units);
    }
    ctx.run_batch();

    // --- Phase 1: L panel along each grid row.
    std::fill(l_ready.begin(), l_ready.end(), 0.0);
    for (auto& v : row_keys) v.clear();
    for (std::size_t bi = k + 1; bi < nb; ++bi)
      row_keys[ctx.owner(bi, k).row].push_back(
          BlockKey{kTagA * nb + bi, k});
    for (std::size_t gi = 0; gi < ctx.p; ++gi)
      ctx.ring_broadcast_row(gi, diag.col, row_keys[gi],
                             ctx.clock[ctx.pid(gi, diag.col)], l_ready);

    // --- Phase 2: each L block (J, k) relays down grid column
    // owner(.,J).col, starting from the processor of its own grid row in
    // that column (which received it in phase 1). Bundle per
    // (column, source-row) ring.
    std::fill(c_ready.begin(), c_ready.end(), 0.0);
    std::map<std::pair<std::size_t, std::size_t>, std::vector<BlockKey>>
        col_rings;
    for (std::size_t bj = k + 1; bj < nb; ++bj) {
      const std::size_t gj = ctx.owner(0, bj).col;
      const std::size_t src_gi = ctx.owner(bj, k).row;
      col_rings[{gj, src_gi}].push_back(BlockKey{kTagA * nb + bj, k});
    }
    for (const auto& [line, keys] : col_rings) {
      const auto [gj, src_gi] = line;
      ctx.ring_broadcast_col(gj, src_gi, keys,
                             l_ready[ctx.pid(src_gi, gj)], c_ready);
    }

    // --- Symmetric trailing update A_IJ -= L_I * L_J^T, I >= J > k.
    for (std::size_t id = 0; id < procs; ++id) {
      double work = 0.0, units = 0.0;
      const double ready = std::max(l_ready[id], c_ready[id]);
      for (std::size_t bi = k + 1; bi < nb; ++bi) {
        for (std::size_t bj = k + 1; bj <= bi; ++bj) {
          if (ctx.owner_pid(bi, bj) != id) continue;
          const std::size_t ilen = block_len(bi, block, n);
          const std::size_t jlen = block_len(bj, block, n);
          const BlockKey li_key{kTagA * nb + bi, k};
          const BlockKey lj_key{kTagA * nb + bj, k};
          const BlockKey t_key{kTagA * nb + bi, bj};
          const ConstMatrixView li = ctx.store[id].at(li_key);
          const ConstMatrixView lj = ctx.store[id].at(lj_key);
          const MatrixView tv = ctx.store[id].at(t_key);
          // Both L panel blocks are reused across the symmetric update
          // (li across the block row, lj — transposed — across the block
          // column); the transposed pack is cached like any other.
          PackedPanelCache* const cache = &ctx.store[id].pack_cache();
          const PackTag li_t = ctx.tag(id, li_key);
          const PackTag lj_t = ctx.tag(id, lj_key);
          const int prio = bj == k + 1 ? kPrioPanel : kPrioUpdate;
          const double op_units =
              costs.update * vol_frac(ilen, jlen, klen, block);
          ctx.add_op(id, "mp.gemm", prio, {li_key, lj_key}, {t_key},
                     [li, li_t, lj, lj_t, tv, cache] {
                       gemm_cached(Trans::No, Trans::Yes, -1.0, li, li_t,
                                   lj, lj_t, 1.0, tv, cache);
                     },
                     ctx.cycle_time(id) * op_units);
          units += op_units;
          work += ctx.cycle_time(id) * op_units;
        }
      }
      if (work > 0.0)
        ctx.compute(id, ready, work, "update", ObsOp::kUpdate, units);
    }
    ctx.run_batch();

    // --- Drop transient copies of the panel.
    for (std::size_t id = 0; id < procs; ++id)
      for (std::size_t bi = k; bi < nb; ++bi)
        if (ctx.owner_pid(bi, k) != id)
          ctx.erase_block(id, BlockKey{kTagA * nb + bi, k});
  }

  ctx.finish();
  gather(ctx, a, kTagA, nb, nb);
  return ctx.report();
}

MpQrReport run_mp_qr(const Machine& machine, const Distribution2D& dist,
                     MatrixView a, std::size_t block,
                     const KernelCosts& costs, TraceSink* sink,
                     const RuntimeOptions& opts) {
  ProfScope prof_span("mp.qr");
  const std::size_t rows = a.rows(), cols = a.cols();
  HG_CHECK(rows >= cols, "run_mp_qr needs rows >= cols, got " << rows << "x"
                                                              << cols);
  HG_CHECK(neighbor_census(dist).aligned,
           "run_mp_qr requires an aligned (grid-pattern) distribution");
  MpContext ctx(machine, dist, block, sink, opts);
  const std::size_t nbr = block_count(rows, block);
  const std::size_t nbc = block_count(cols, block);
  const std::size_t procs = ctx.p * ctx.q;

  ctx.init_rebalance(nbr, nbc, 1);
  scatter(ctx, a, kTagA, nbr, nbc);
  MpQrReport rep;
  rep.tau.reserve(cols);

  std::vector<double> col_ready(procs), v_ready(procs), y_ready(procs);
  std::vector<double> work_acc(procs), units_acc(procs);
  std::vector<std::vector<BlockKey>> row_keys(ctx.p), col_keys(ctx.q);
  std::vector<char> contrib(ctx.p);

  for (std::size_t k = 0; k < nbc; ++k) {
    ctx.set_step(k);
    // Rebalance the trailing panel + update region. Note: migrating under
    // QR regroups the W-reduction by the *new* grid rows, so a rebalanced
    // run's bits differ from the static plan's (still deterministic and
    // residual-accurate; see doc/rebalance.md).
    ctx.maybe_rebalance(
        k,
        RebalanceRegion{k, nbr, k, nbc, false,
                        static_cast<double>(nbc - k) / 3.0, 0.0, 1.0},
        {{kTagA, k, nbr, k, nbc, false}});
    const std::size_t klo = block_lo(k, block);
    const std::size_t klen = block_len(k, block, cols);
    const ProcCoord diag = ctx.owner(k, k);
    const std::size_t diag_id = ctx.pid(diag.row, diag.col);
    const BlockKey diag_key{kTagA * nbr + k, k};
    const BlockKey t_key{kTagT * nbr + k, k};
    const BlockKey v0_key{kTagV * nbr + k, k};

    // Grid rows holding any panel / trailing block row this step. With an
    // aligned distribution owner(bi, .).row is bj-independent.
    std::fill(contrib.begin(), contrib.end(), 0);
    for (std::size_t bi = k; bi < nbr; ++bi)
      contrib[ctx.owner(bi, k).row] = 1;

    // --- Gather the column panel to the diagonal owner (the panel lives in
    // grid column diag.col; off-owner blocks take one feeder hop each).
    double gather_ready = ctx.clock[diag_id];
    std::vector<BlockKey> panel_keys;
    for (std::size_t bi = k; bi < nbr; ++bi) {
      const std::size_t from = ctx.owner_pid(bi, k);
      const double arrival = ctx.feeder(from, diag_id,
                                        BlockKey{kTagA * nbr + bi, k},
                                        ctx.clock[from]);
      gather_ready = std::max(gather_ready, arrival);
      panel_keys.push_back(BlockKey{kTagA * nbr + bi, k});
    }

    // --- Factor the assembled panel on the host and write the blocks back
    // into the diagonal owner's copies. All panel arithmetic is serial
    // host-side math, so the factors are bit-identical for any thread
    // count. Dag mode waits only for the ops touching the panel blocks at
    // the diagonal owner (the feeder copies and the owner's own previous
    // trailing updates); everything else keeps running.
    ctx.host_sync(diag_id, panel_keys);
    Matrix panel(rows - klo, klen);
    for (std::size_t bi = k; bi < nbr; ++bi) {
      const std::size_t ilen = block_len(bi, block, rows);
      panel.view()
          .block(block_lo(bi, block) - klo, 0, ilen, klen)
          .copy_from(ctx.store[diag_id].at(BlockKey{kTagA * nbr + bi, k}));
    }
    const QrResult pres = qr_factor(panel.view());
    rep.tau.insert(rep.tau.end(), pres.tau.begin(), pres.tau.end());
    double panel_work = 0.0, panel_units = 0.0;
    for (std::size_t bi = k; bi < nbr; ++bi) {
      const std::size_t ilen = block_len(bi, block, rows);
      ctx.store[diag_id].bump_version(BlockKey{kTagA * nbr + bi, k});
      ctx.store[diag_id]
          .at(BlockKey{kTagA * nbr + bi, k})
          .copy_from(
              panel.view().block(block_lo(bi, block) - klo, 0, ilen, klen));
      panel_units += costs.qr_factor * vol_frac(ilen, klen, klen, block);
      panel_work += ctx.cycle_time(diag_id) * costs.qr_factor *
                    vol_frac(ilen, klen, klen, block);
    }
    ctx.compute(diag_id, gather_ready, panel_work, "panel", ObsOp::kPanel,
                panel_units);
    ctx.note_host_work(diag_id, panel_keys, panel_work, "panel");

    const bool has_trailing = k + 1 < nbc;
    if (has_trailing) {
      // larft T factor, kept at the diagonal owner and shipped along grid
      // row diag.row with the V panel below.
      Matrix t = qr_form_t(panel.view(), pres.tau);
      ctx.store[diag_id].put(t_key, std::move(t));
      const double t_units =
          costs.qr_update * vol_frac(klen, klen, klen, block);
      ctx.compute(diag_id, 0.0, ctx.cycle_time(diag_id) * t_units, "t-form",
                  ObsOp::kAux, t_units);
      ctx.note_host_work(diag_id, {t_key},
                         ctx.cycle_time(diag_id) * t_units, "t-form");
    }

    // --- Send the factored panel back down the owner grid column (also
    // restores the owners' blocks, so this runs even at the last step).
    std::fill(col_ready.begin(), col_ready.end(), 0.0);
    ctx.ring_broadcast_col(diag.col, diag.row, panel_keys,
                           ctx.clock[diag_id], col_ready);

    if (has_trailing) {
      // --- V panel out along grid rows: each row carries its own blocks;
      // row diag.row also carries T (needed by the reduction roots).
      std::fill(v_ready.begin(), v_ready.end(), 0.0);
      for (auto& v : row_keys) v.clear();
      for (std::size_t bi = k; bi < nbr; ++bi)
        row_keys[ctx.owner(bi, k).row].push_back(
            BlockKey{kTagA * nbr + bi, k});
      row_keys[diag.row].push_back(t_key);
      for (std::size_t gi = 0; gi < ctx.p; ++gi) {
        if (row_keys[gi].empty()) continue;
        const std::size_t src = ctx.pid(gi, diag.col);
        ctx.ring_broadcast_row(gi, diag.col, row_keys[gi],
                               std::max(col_ready[src], ctx.clock[src]),
                               v_ready);
      }

      // --- Build the unit-lower diagonal V block at every processor of
      // grid row diag.row (local postprocessing of the received diagonal
      // block; off-diagonal panel blocks are already pure V). Queued as an
      // op on the owner's lane so the dag can order it after the diagonal
      // copy lands; under the barrier scheduler it simply runs first on
      // the same lane as its pass-1 readers.
      for (std::size_t gj = 0; gj < ctx.q; ++gj) {
        const std::size_t id = ctx.pid(diag.row, gj);
        const ConstMatrixView dv = ctx.store[id].at(diag_key);
        ctx.store[id].put(v0_key, ctx.store[id].acquire(dv.rows(), klen));
        const MatrixView v0v = ctx.store[id].at(v0_key);
        ctx.add_op(id, "mp.v0", kPrioSolve, {diag_key}, {v0_key},
                   [dv, v0v] {
                     for (std::size_t j = 0; j < v0v.cols(); ++j)
                       for (std::size_t i = 0; i < v0v.rows(); ++i)
                         v0v(i, j) =
                             i > j ? dv(i, j) : (i == j ? 1.0 : 0.0);
                   });
      }

      // --- Pass 1: partial W = V^T * C per (processor, trailing column),
      // ascending block row on each owner's lane. W keys carry the step in
      // their column so a deferred erase of step k's partials can never
      // collide with step k + 1 re-creating them.
      std::fill(work_acc.begin(), work_acc.end(), 0.0);
      std::fill(units_acc.begin(), units_acc.end(), 0.0);
      for (std::size_t bj = k + 1; bj < nbc; ++bj) {
        const std::size_t gj = ctx.owner(k, bj).col;
        const std::size_t jlen = block_len(bj, block, cols);
        for (std::size_t gi = 0; gi < ctx.p; ++gi) {
          if (!contrib[gi]) continue;
          const std::size_t id = ctx.pid(gi, gj);
          Matrix wbuf = ctx.store[id].acquire(klen, jlen);
          wbuf.view().fill(0.0);
          const BlockKey w_key{kTagW * nbr + bj, k * ctx.p + gi};
          ctx.store[id].put(w_key, std::move(wbuf));
          const MatrixView wv = ctx.store[id].at(w_key);
          for (std::size_t bi = k; bi < nbr; ++bi) {
            if (ctx.owner(bi, k).row != gi) continue;
            const std::size_t ilen = block_len(bi, block, rows);
            const BlockKey v_key =
                bi == k ? v0_key : BlockKey{kTagA * nbr + bi, k};
            const BlockKey c_key{kTagA * nbr + bi, bj};
            const ConstMatrixView vv = ctx.store[id].at(v_key);
            const ConstMatrixView cv = ctx.store[id].at(c_key);
            // The V block is reused for every trailing column this
            // processor owns; its transposed pack is cached. C is read
            // once per step — no tag.
            PackedPanelCache* const cache = &ctx.store[id].pack_cache();
            const PackTag vt = ctx.tag(id, v_key);
            const double op_units = 0.5 * costs.qr_update *
                                    vol_frac(ilen, jlen, klen, block);
            ctx.add_op(id, "mp.gemm", kPrioUpdate, {v_key, c_key}, {w_key},
                       [vv, vt, cv, wv, cache] {
                         gemm_cached(Trans::Yes, Trans::No, 1.0, vv, vt, cv,
                                     PackTag{}, 1.0, wv, cache);
                       },
                       ctx.cycle_time(id) * op_units);
            units_acc[id] += op_units;
            work_acc[id] += ctx.cycle_time(id) * op_units;
          }
        }
      }
      for (std::size_t id = 0; id < procs; ++id)
        if (work_acc[id] > 0.0)
          ctx.compute(id, v_ready[id], work_acc[id], "w-accumulate",
                      ObsOp::kUpdate, units_acc[id]);
      ctx.run_batch();

      // --- Reduce the partials within each grid column to the diag.row
      // processor and finish Y = T^T * W there. The adds run on the root's
      // lane in ascending contributor order (fixed summation order).
      for (std::size_t bj = k + 1; bj < nbc; ++bj) {
        const std::size_t gj = ctx.owner(k, bj).col;
        const std::size_t jlen = block_len(bj, block, cols);
        const std::size_t root = ctx.pid(diag.row, gj);
        const BlockKey w_root_key{kTagW * nbr + bj, k * ctx.p + diag.row};
        const MatrixView w_root = ctx.store[root].at(w_root_key);
        double reduce_ready = 0.0;
        for (std::size_t gi = 0; gi < ctx.p; ++gi) {
          if (!contrib[gi] || gi == diag.row) continue;
          const std::size_t src = ctx.pid(gi, gj);
          const BlockKey w_key{kTagW * nbr + bj, k * ctx.p + gi};
          const double arrival =
              ctx.net.transfer(src, root, 1, ctx.clock[src]);
          ctx.copy_block(src, root, w_key);
          reduce_ready = std::max(reduce_ready, arrival);
          const ConstMatrixView pv = ctx.store[root].at(w_key);
          ctx.add_op(root, "mp.add", kPrioSolve, {w_key}, {w_root_key},
                     [pv, w_root] { add_in_place(pv, w_root); });
        }
        // Y keys carry the step in their column for the same
        // erase-vs-reuse reason as the W partials.
        const BlockKey y_key{kTagY * nbr + bj, k};
        Matrix ybuf = ctx.store[root].acquire(klen, jlen);
        ctx.store[root].put(y_key, std::move(ybuf));
        const MatrixView yv = ctx.store[root].at(y_key);
        const ConstMatrixView tv = ctx.store[root].at(t_key);
        const ConstMatrixView wcv = ctx.store[root].at(w_root_key);
        // T is reused for every trailing column at this root: cache its
        // transposed pack. beta = 0 overwrites whatever the recycled
        // buffer held.
        PackedPanelCache* const cache = &ctx.store[root].pack_cache();
        const PackTag tt = ctx.tag(root, t_key);
        const double op_units =
            costs.qr_update * vol_frac(klen, jlen, klen, block);
        ctx.add_op(root, "mp.gemm", kPrioSolve, {t_key, w_root_key},
                   {y_key},
                   [tv, tt, wcv, yv, cache] {
                     gemm_cached(Trans::Yes, Trans::No, 1.0, tv, tt, wcv,
                                 PackTag{}, 0.0, yv, cache);
                   },
                   ctx.cycle_time(root) * op_units);
        ctx.compute(root, reduce_ready, ctx.cycle_time(root) * op_units,
                    "w-reduce", ObsOp::kUpdate, op_units);
      }
      ctx.run_batch();

      // --- Y back out along each grid column that owns trailing columns.
      std::fill(y_ready.begin(), y_ready.end(), 0.0);
      for (auto& v : col_keys) v.clear();
      for (std::size_t bj = k + 1; bj < nbc; ++bj)
        col_keys[ctx.owner(k, bj).col].push_back(
            BlockKey{kTagY * nbr + bj, k});
      for (std::size_t gj = 0; gj < ctx.q; ++gj) {
        if (col_keys[gj].empty()) continue;
        ctx.ring_broadcast_col(gj, diag.row, col_keys[gj],
                               ctx.clock[ctx.pid(diag.row, gj)], y_ready);
      }

      // --- Pass 2: C -= V * Y on every owned trailing block.
      std::fill(work_acc.begin(), work_acc.end(), 0.0);
      std::fill(units_acc.begin(), units_acc.end(), 0.0);
      for (std::size_t id = 0; id < procs; ++id) {
        for (std::size_t bi = k; bi < nbr; ++bi) {
          for (std::size_t bj = k + 1; bj < nbc; ++bj) {
            if (ctx.owner_pid(bi, bj) != id) continue;
            const std::size_t ilen = block_len(bi, block, rows);
            const std::size_t jlen = block_len(bj, block, cols);
            const BlockKey v_key =
                bi == k ? v0_key : BlockKey{kTagA * nbr + bi, k};
            const BlockKey y_key{kTagY * nbr + bj, k};
            const BlockKey c_key{kTagA * nbr + bi, bj};
            const ConstMatrixView vv = ctx.store[id].at(v_key);
            const ConstMatrixView yv = ctx.store[id].at(y_key);
            const MatrixView cv = ctx.store[id].at(c_key);
            // V is reused across the trailing columns, Y across the block
            // rows: pack each once per step on this processor.
            PackedPanelCache* const cache = &ctx.store[id].pack_cache();
            const PackTag vt = ctx.tag(id, v_key);
            const PackTag yt = ctx.tag(id, y_key);
            const double op_units = 0.5 * costs.qr_update *
                                    vol_frac(ilen, jlen, klen, block);
            ctx.add_op(id, "mp.gemm", kPrioUpdate, {v_key, y_key}, {c_key},
                       [vv, vt, yv, yt, cv, cache] {
                         gemm_cached(Trans::No, Trans::No, -1.0, vv, vt, yv,
                                     yt, 1.0, cv, cache);
                       },
                       ctx.cycle_time(id) * op_units);
            units_acc[id] += op_units;
            work_acc[id] += ctx.cycle_time(id) * op_units;
          }
        }
        if (work_acc[id] > 0.0)
          ctx.compute(id, std::max(v_ready[id], y_ready[id]), work_acc[id],
                      "update", ObsOp::kUpdate, units_acc[id]);
      }
      ctx.run_batch();
    }

    // --- Drop this step's transients (erase is a no-op on absent keys).
    for (std::size_t id = 0; id < procs; ++id) {
      for (std::size_t bi = k; bi < nbr; ++bi)
        if (ctx.owner_pid(bi, k) != id)
          ctx.erase_block(id, BlockKey{kTagA * nbr + bi, k});
      ctx.erase_block(id, t_key);
      ctx.erase_block(id, v0_key);
      for (std::size_t bj = k + 1; bj < nbc; ++bj) {
        for (std::size_t gi = 0; gi < ctx.p; ++gi)
          ctx.erase_block(id, BlockKey{kTagW * nbr + bj, k * ctx.p + gi});
        ctx.erase_block(id, BlockKey{kTagY * nbr + bj, k});
      }
    }
  }

  ctx.finish();
  gather(ctx, a, kTagA, nbr, nbc);
  static_cast<MpReport&>(rep) = ctx.report();
  return rep;
}

}  // namespace hetgrid
