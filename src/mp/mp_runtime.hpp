// Asynchronous message-passing runtime: distributed-memory execution of
// the paper's kernels with per-processor storage and explicit messages.
//
// This is the highest-fidelity model in hetgrid. Compared to the
// bulk-synchronous virtual runtime (src/runtime):
//   * every processor has its own BlockStore — data moves only through
//     VirtualNetwork::transfer, and reading a block that was never sent
//     throws (catching missing-communication bugs in kernel ports);
//   * there is no global barrier — per-processor clocks advance
//     independently, ring broadcasts pipeline hop by hop through the
//     contended network, and later steps' panel broadcasts overlap earlier
//     steps' updates, exactly as a well-written MPI code behaves;
//   * numerics are real: the gathered results are verified against the
//     sequential kernels by the tests.
//
// The paper's own MPI experiments live in its companion paper [4]; this
// runtime is the faithful stand-in (see DESIGN.md's substitution table).
#pragma once

#include <cstddef>
#include <vector>

#include "dist/distribution.hpp"
#include "matrix/matrix.hpp"
#include "sim/simulator.hpp"

namespace hetgrid {

struct MpReport {
  double makespan = 0.0;        // max over processors of the final clock
  std::vector<double> clock;    // per-processor finish time
  std::vector<double> busy;     // per-processor pure compute time
  std::size_t messages = 0;     // point-to-point messages sent
  double blocks_moved = 0.0;    // total r x r blocks transferred
  bool factorized = true;       // LU: false if a zero pivot was hit
  // Online rebalancer activity (doc/rebalance.md); both stay 0 with
  // RuntimeOptions::Rebalance::kOff.
  std::size_t rebalances = 0;        // panel boundaries that acted
  std::size_t rebalance_blocks = 0;  // blocks migrated to new owners

  double average_utilization() const;
};

struct MpQrReport : MpReport {
  std::vector<double> tau;  // reflector scales, panel-major like qr_factor
};

/// Distributed-memory C = A * B (outer-product algorithm) with square
/// blocks of `block` elements. A and B are scattered to their owners, the
/// per-step panels travel by ring broadcasts, and the owned C blocks are
/// gathered into `c` at the end.
///
/// All run_mp_* entry points honor `opts.threads`: each step's independent
/// per-processor block updates fan out across a worker pool while every
/// clock, counter, and trace span is computed on the host thread — the
/// MpReport, the trace, and the gathered matrix are bit-identical for any
/// thread count (see doc/parallel_runtime.md).
///
/// They also honor `opts.scheduler`: kBarrier (default) flushes the batch
/// at every phase boundary, kDag emits the same ops into a dependency
/// graph keyed by (processor, block) so phases of successive steps overlap
/// — with identical results, reports, and traces either way (same doc).
MpReport run_mp_mmm(const Machine& machine, const Distribution2D& dist,
                    const ConstMatrixView& a, const ConstMatrixView& b,
                    MatrixView c, std::size_t block,
                    const KernelCosts& costs = {},
                    TraceSink* sink = nullptr,
                    const RuntimeOptions& opts = {});

/// Distributed-memory right-looking LU without pivoting (diagonally
/// dominant input required). `a` is scattered, factored, and the packed
/// L\U factors gathered back into `a`.
///
/// With `lookahead` enabled, each processor updates the blocks the *next*
/// panel needs (block column / row k+1) first and defers the rest of its
/// trailing update until after the next step's panel and triangular
/// solves — the classic lookahead optimization that takes the panel
/// factorization off the critical path. Numerical results are identical;
/// only the virtual schedule changes. Under `opts.scheduler = kDag` the
/// same overlap also happens for real on the wall clock (next-panel
/// updates run at elevated priority and the host only waits on the
/// diagonal block's dependency chain); the flag keeps controlling the
/// virtual-time model independently, in either scheduler.
MpReport run_mp_lu(const Machine& machine, const Distribution2D& dist,
                   MatrixView a, std::size_t block,
                   const KernelCosts& costs = {}, bool lookahead = false,
                   TraceSink* sink = nullptr,
                   const RuntimeOptions& opts = {});

/// Distributed-memory right-looking Cholesky (lower variant) on an SPD
/// matrix. The L21 panel is ring-broadcast along grid rows, then each
/// block is relayed down its trailing block-column's grid column (the
/// "transposed panel" broadcast of the symmetric update). Requires an
/// aligned distribution.
MpReport run_mp_cholesky(const Machine& machine, const Distribution2D& dist,
                         MatrixView a, std::size_t block,
                         const KernelCosts& costs = {},
                         TraceSink* sink = nullptr,
                         const RuntimeOptions& opts = {});

/// Distributed-memory compact-WY Householder QR (rows >= cols). Per panel:
/// the column panel is gathered to the diagonal owner and factored there,
/// the factored V panel (plus the larft T factor) travels back down the
/// owner grid column and out along grid rows, each processor accumulates
/// its partial W = V^T * C which is tree-reduced within the grid column to
/// Y = T^T * W, and Y rides a column ring back out for the C -= V * Y
/// update. On return `a` holds R in its upper triangle and the Householder
/// vectors below, exactly like qr_factor; the tau vector is in the report.
/// Requires an aligned distribution (same condition as LU / Cholesky).
MpQrReport run_mp_qr(const Machine& machine, const Distribution2D& dist,
                     MatrixView a, std::size_t block,
                     const KernelCosts& costs = {},
                     TraceSink* sink = nullptr,
                     const RuntimeOptions& opts = {});

}  // namespace hetgrid
