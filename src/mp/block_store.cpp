#include "mp/block_store.hpp"

#include <utility>

namespace hetgrid {

void BlockStore::put(BlockKey key, Matrix block) {
  blocks_[key] = std::move(block);
}

MatrixView BlockStore::at(BlockKey key) {
  auto it = blocks_.find(key);
  HG_CHECK(it != blocks_.end(), "block (" << key.row << "," << key.col
                                          << ") is not in local memory");
  return it->second.view();
}

ConstMatrixView BlockStore::at(BlockKey key) const {
  auto it = blocks_.find(key);
  HG_CHECK(it != blocks_.end(), "block (" << key.row << "," << key.col
                                          << ") is not in local memory");
  return it->second.view();
}

void BlockStore::erase(BlockKey key) { blocks_.erase(key); }

}  // namespace hetgrid
