#include "mp/block_store.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace hetgrid {

namespace {

std::uint64_t shape_key(std::size_t rows, std::size_t cols) {
  return (static_cast<std::uint64_t>(rows) << 32) ^
         static_cast<std::uint64_t>(cols);
}

}  // namespace

void BlockStore::put(BlockKey key, Matrix block) {
  bump_version(key);
  blocks_[key] = std::move(block);
}

MatrixView BlockStore::at(BlockKey key) {
  auto it = blocks_.find(key);
  HG_CHECK(it != blocks_.end(), "block (" << key.row << "," << key.col
                                          << ") is not in local memory");
  return it->second.view();
}

ConstMatrixView BlockStore::at(BlockKey key) const {
  auto it = blocks_.find(key);
  HG_CHECK(it != blocks_.end(), "block (" << key.row << "," << key.col
                                          << ") is not in local memory");
  return it->second.view();
}

void BlockStore::erase(BlockKey key) {
  auto it = blocks_.find(key);
  if (it == blocks_.end()) return;
  bump_version(key);
  Matrix& m = it->second;
  if (!m.empty()) {
    auto& shelf = pool_[shape_key(m.rows(), m.cols())];
    if (shelf.size() < pool_cap_) {
      shelf.push_back(std::move(m));
    } else {
      metric_count("block_store.pool_evictions");
    }
  }
  blocks_.erase(it);
}

Matrix BlockStore::acquire(std::size_t rows, std::size_t cols) {
  auto it = pool_.find(shape_key(rows, cols));
  if (it != pool_.end() && !it->second.empty()) {
    metric_count("block_store.pool_hits");
    Matrix m = std::move(it->second.back());
    it->second.pop_back();
    return m;
  }
  metric_count("block_store.pool_misses");
  return Matrix(rows, cols);
}

void BlockStore::reserve(std::size_t blocks) { blocks_.reserve(blocks); }

std::size_t BlockStore::pooled() const {
  std::size_t n = 0;
  for (const auto& [shape, buffers] : pool_) n += buffers.size();
  return n;
}

std::uint64_t BlockStore::version(BlockKey key) const {
  auto it = versions_.find(key);
  return it == versions_.end() ? 0 : it->second;
}

}  // namespace hetgrid
