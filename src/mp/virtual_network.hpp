// Event-driven point-to-point network for the message-passing runtime.
//
// Unlike the bulk-synchronous simulator (src/sim), which charges whole
// broadcast phases, this network times every individual message: each
// processor's sends are serialized (the paper's Section 2.2 assumption),
// each receiver is busy for the transfer duration, and on Ethernet all
// transfers additionally contend for one shared bus. Delivery times emerge
// from the contention, so ring pipelines fill and drain realistically.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "util/check.hpp"

namespace hetgrid {

class VirtualNetwork {
 public:
  VirtualNetwork(std::size_t processors, const NetworkModel& model,
                 TraceSink* sink = nullptr);

  /// Tags subsequently timed transfers with the kernel step for the
  /// trace (purely observational).
  void set_step(std::size_t step) { step_ = step; }

  /// Times one message of `blocks` r x r blocks from `src` to `dst`, not
  /// starting before `earliest` (data readiness at the sender). Returns
  /// the delivery time at the receiver. Self-sends are free and return
  /// `earliest`.
  double transfer(std::size_t src, std::size_t dst, std::size_t blocks,
                  double earliest);

  /// Earliest instant `proc` can start a new send.
  double send_free(std::size_t proc) const;
  /// Earliest instant `proc` can start receiving.
  double recv_free(std::size_t proc) const;

  std::size_t messages_sent() const { return messages_; }
  double bytes_blocks_sent() const { return blocks_sent_; }

 private:
  NetworkModel model_;
  std::vector<double> send_free_;
  std::vector<double> recv_free_;
  double bus_free_ = 0.0;  // Ethernet shared medium
  TraceSink* sink_ = nullptr;
  std::size_t step_ = 0;
  std::size_t messages_ = 0;
  double blocks_sent_ = 0.0;
};

}  // namespace hetgrid
