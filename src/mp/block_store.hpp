// Per-processor distributed block storage.
//
// Each processor owns the blocks its distribution assigns to it and holds
// transient copies of blocks it received (broadcast panels). Nothing is
// shared: the message-passing runtime moves data exclusively through
// explicit send/receive pairs, so a kernel that "forgets" a communication
// step fails loudly with a missing-block error instead of silently reading
// another processor's memory — exactly the property that makes the
// distributed-memory port of a kernel trustworthy.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "matrix/matrix.hpp"

namespace hetgrid {

/// Global coordinates of an r x r block.
struct BlockKey {
  std::size_t row = 0;
  std::size_t col = 0;

  friend bool operator==(const BlockKey&, const BlockKey&) = default;
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const {
    return k.row * 0x9e3779b97f4a7c15ULL ^ k.col;
  }
};

/// One processor's local memory: a map from global block coordinates to
/// locally stored block contents.
class BlockStore {
 public:
  /// Inserts (or overwrites) a block copy.
  void put(BlockKey key, Matrix block);

  /// Mutable access; throws PreconditionError if the block is not local —
  /// the runtime equivalent of dereferencing a remote pointer.
  MatrixView at(BlockKey key);
  ConstMatrixView at(BlockKey key) const;

  bool contains(BlockKey key) const { return blocks_.count(key) > 0; }

  /// Removes transient copies (received panels) after a step; owned data
  /// is re-put by the kernels as they update it.
  void erase(BlockKey key);

  std::size_t size() const { return blocks_.size(); }

 private:
  std::unordered_map<BlockKey, Matrix, BlockKeyHash> blocks_;
};

}  // namespace hetgrid
