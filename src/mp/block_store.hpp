// Per-processor distributed block storage.
//
// Each processor owns the blocks its distribution assigns to it and holds
// transient copies of blocks it received (broadcast panels). Nothing is
// shared: the message-passing runtime moves data exclusively through
// explicit send/receive pairs, so a kernel that "forgets" a communication
// step fails loudly with a missing-block error instead of silently reading
// another processor's memory — exactly the property that makes the
// distributed-memory port of a kernel trustworthy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "matrix/matrix.hpp"

namespace hetgrid {

/// Global coordinates of an r x r block.
struct BlockKey {
  std::size_t row = 0;
  std::size_t col = 0;

  friend bool operator==(const BlockKey&, const BlockKey&) = default;
};

/// splitmix64 finalizer (Steele et al.): full-avalanche 64-bit mix.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash for BlockKey. The seed version xor-folded the column into a
/// row-only product, so structured key sweeps (a block column, a tagged
/// panel) perturbed only the low bits and chained into few buckets; the
/// avalanche mix spreads every sweep pattern across the whole table.
struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const {
    return static_cast<std::size_t>(
        mix64((static_cast<std::uint64_t>(k.row) << 32) ^
              static_cast<std::uint64_t>(k.col)));
  }
};

/// One processor's local memory: a map from global block coordinates to
/// locally stored block contents. Freed payloads (transient panel copies
/// erased at step boundaries) are pooled per shape and recycled by
/// acquire(), so the steady state of a kernel run performs no heap
/// allocation for block traffic after the first step.
class BlockStore {
 public:
  /// Inserts (or overwrites) a block copy; the payload is moved in.
  void put(BlockKey key, Matrix block);

  /// Mutable access; throws PreconditionError if the block is not local —
  /// the runtime equivalent of dereferencing a remote pointer.
  MatrixView at(BlockKey key);
  ConstMatrixView at(BlockKey key) const;

  bool contains(BlockKey key) const { return blocks_.count(key) > 0; }

  /// Removes transient copies (received panels) after a step; the payload
  /// buffer is retained in the shape pool for acquire(). Owned data is
  /// re-put by the kernels as they update it.
  void erase(BlockKey key);

  /// Returns an uninitialized rows x cols block, recycling a pooled buffer
  /// of that exact shape when one is available (contents are stale — the
  /// caller must overwrite them, typically via copy_from).
  Matrix acquire(std::size_t rows, std::size_t cols);

  /// Pre-sizes the hash table for `blocks` resident blocks so scatter and
  /// panel traffic do not rehash mid-run.
  void reserve(std::size_t blocks);

  std::size_t size() const { return blocks_.size(); }
  std::size_t pooled() const;

 private:
  std::unordered_map<BlockKey, Matrix, BlockKeyHash> blocks_;
  // Freed payloads keyed by (rows << 32) ^ cols.
  std::unordered_map<std::uint64_t, std::vector<Matrix>> pool_;
};

}  // namespace hetgrid
