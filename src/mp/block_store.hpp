// Per-processor distributed block storage.
//
// Each processor owns the blocks its distribution assigns to it and holds
// transient copies of blocks it received (broadcast panels). Nothing is
// shared: the message-passing runtime moves data exclusively through
// explicit send/receive pairs, so a kernel that "forgets" a communication
// step fails loudly with a missing-block error instead of silently reading
// another processor's memory — exactly the property that makes the
// distributed-memory port of a kernel trustworthy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "matrix/matrix.hpp"
#include "matrix/packed_cache.hpp"

namespace hetgrid {

/// Global coordinates of an r x r block.
struct BlockKey {
  std::size_t row = 0;
  std::size_t col = 0;

  friend bool operator==(const BlockKey&, const BlockKey&) = default;
};

/// splitmix64 finalizer (Steele et al.): full-avalanche 64-bit mix.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash for BlockKey. The seed version xor-folded the column into a
/// row-only product, so structured key sweeps (a block column, a tagged
/// panel) perturbed only the low bits and chained into few buckets; the
/// avalanche mix spreads every sweep pattern across the whole table.
struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const {
    return static_cast<std::size_t>(
        mix64((static_cast<std::uint64_t>(k.row) << 32) ^
              static_cast<std::uint64_t>(k.col)));
  }
};

/// One processor's local memory: a map from global block coordinates to
/// locally stored block contents. Freed payloads (transient panel copies
/// erased at step boundaries) are pooled per shape and recycled by
/// acquire(), so the steady state of a kernel run performs no heap
/// allocation for block traffic after the first step.
class BlockStore {
 public:
  /// Inserts (or overwrites) a block copy; the payload is moved in.
  /// Bumps the key's write version (as does erase), so packed panels of the
  /// previous contents become unreachable in the pack cache.
  void put(BlockKey key, Matrix block);

  /// Mutable access; throws PreconditionError if the block is not local —
  /// the runtime equivalent of dereferencing a remote pointer.
  MatrixView at(BlockKey key);
  ConstMatrixView at(BlockKey key) const;

  bool contains(BlockKey key) const { return blocks_.count(key) > 0; }

  /// Removes transient copies (received panels) after a step; the payload
  /// buffer is retained in the shape pool for acquire(). Owned data is
  /// re-put by the kernels as they update it.
  void erase(BlockKey key);

  /// Returns an uninitialized rows x cols block, recycling a pooled buffer
  /// of that exact shape when one is available (contents are stale — the
  /// caller must overwrite them, typically via copy_from).
  Matrix acquire(std::size_t rows, std::size_t cols);

  /// Pre-sizes the hash table for `blocks` resident blocks so scatter and
  /// panel traffic do not rehash mid-run.
  void reserve(std::size_t blocks);

  std::size_t size() const { return blocks_.size(); }
  std::size_t pooled() const;

  /// Write epoch of a block slot, starting at 0 for a never-written key.
  /// The host thread bumps it (bump_version) every time it emits an
  /// operation that will write the block — put/erase, a staged op's output,
  /// an in-place copy — and the (key, version) pair is what tags entries in
  /// the packed-panel cache, so a reordering scheduler can never look up a
  /// stale pack: stale versions are simply never asked for again.
  std::uint64_t version(BlockKey key) const;
  std::uint64_t bump_version(BlockKey key) { return ++versions_[key]; }

  /// Shape-checked block copy: the write half of a block transfer (panel
  /// broadcast or migration) into an already-resident destination slot.
  /// Throws PreconditionError on a shape mismatch instead of reading out of
  /// bounds — a migration that lands on the wrong slot fails loudly.
  static void copy_block_into(MatrixView dst, ConstMatrixView src) {
    HG_CHECK(dst.rows() == src.rows() && dst.cols() == src.cols(),
             "copy_block into a block of different shape");
    dst.copy_from(src);
  }

  /// Dense 64-bit id for (key, tag-multiplexed) block coordinates — the
  /// PackedPanelCache id for this block slot.
  static std::uint64_t pack_id(BlockKey key) {
    return (static_cast<std::uint64_t>(key.row) << 32) ^
           static_cast<std::uint64_t>(key.col);
  }

  /// The processor-local packed-operand cache (see matrix/packed_cache.hpp).
  PackedPanelCache& pack_cache() { return pack_cache_; }

  /// Per-shape cap on pooled free buffers. erase() drops (frees) a payload
  /// instead of pooling it once its shape's pool is full, counting
  /// block_store.pool_evictions — the bound that keeps long runs from
  /// accumulating every transient shape they ever saw.
  static constexpr std::size_t kDefaultPoolCapPerShape = 8;
  void set_pool_capacity(std::size_t per_shape) { pool_cap_ = per_shape; }
  std::size_t pool_capacity() const { return pool_cap_; }

 private:
  std::unordered_map<BlockKey, Matrix, BlockKeyHash> blocks_;
  // Freed payloads keyed by (rows << 32) ^ cols, at most pool_cap_ each.
  std::unordered_map<std::uint64_t, std::vector<Matrix>> pool_;
  std::size_t pool_cap_ = kDefaultPoolCapPerShape;
  // Write epochs; host-thread-only, like every other mutation here.
  std::unordered_map<BlockKey, std::uint64_t, BlockKeyHash> versions_;
  PackedPanelCache pack_cache_;
};

}  // namespace hetgrid
