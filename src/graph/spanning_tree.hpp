// Spanning-tree machinery for the exact solver (paper Section 4.3.1).
//
// The optimization variables r_1..r_p, c_1..c_q are the vertices of the
// complete bipartite graph K_{p,q}; the edge (r_i, c_j) carries the
// constraint r_i * t_ij * c_j <= 1. The paper shows the optimum of Obj2 is
// attained on a spanning tree whose edges are all tight (equalities), so the
// exact solver searches over spanning trees of K_{p,q}. The search is an
// iterative depth-first walk over include/exclude decisions on the edges in
// a fixed (row-major) order, sharing ONE union-find whose mutations are
// rolled back on backtrack instead of copying it per search node.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace hetgrid {

/// An edge of K_{p,q}: connects row vertex `row` (0-based, < p) with column
/// vertex `col` (0-based, < q).
struct BipartiteEdge {
  std::size_t row = 0;
  std::size_t col = 0;

  friend bool operator==(const BipartiteEdge&, const BipartiteEdge&) = default;
};

/// Union-find over p + q vertices (rows first, then columns) with an undo
/// log: every successful unite() is recorded and can be rolled back to a
/// checkpoint, so one instance serves an entire backtracking search with no
/// per-node copies. find() deliberately does NOT compress paths — the
/// parent forest must stay exactly restorable, and union-by-rank alone keeps
/// chains O(log n) on the tiny vertex counts the solver uses.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  std::size_t find(std::size_t x) const;
  /// Returns false (and logs nothing) if x and y were already connected.
  bool unite(std::size_t x, std::size_t y);
  std::size_t components() const { return components_; }

  /// Marks the current state; pass the mark to rollback() to undo every
  /// unite() performed since.
  std::size_t checkpoint() const { return log_.size(); }
  void rollback(std::size_t mark);

 private:
  struct UndoRecord {
    std::uint32_t child_root;   // root that was attached under parent_root
    std::uint32_t parent_root;  // surviving root
    std::uint8_t rank_bumped;   // whether parent_root's rank was incremented
  };

  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t components_;
  std::vector<UndoRecord> log_;
};

/// Invokes `visit` once per spanning tree of K_{p,q}; each tree is a list of
/// exactly p + q - 1 edges in ascending edge-index order. Returns the number
/// of trees visited. If `visit` returns false, enumeration stops early.
///
/// Complexity is proportional to the number of trees (p^{q-1} * q^{p-1},
/// Scoins' formula) plus pruned branches; intended for the small grids where
/// the paper's exact method is feasible. The branch-and-bound solver in
/// core/exact_solver.cpp uses the same search order but prunes on a bound,
/// so it visits far fewer trees than this exhaustive walk.
std::uint64_t enumerate_spanning_trees(
    std::size_t p, std::size_t q,
    const std::function<bool(const std::vector<BipartiteEdge>&)>& visit);

/// Number of spanning trees of K_{p,q} by Scoins' formula p^{q-1} * q^{p-1}.
/// Used by tests to validate the enumerator and by callers to bound work
/// before launching the exact solver. Saturates at UINT64_MAX on overflow.
std::uint64_t spanning_tree_count(std::size_t p, std::size_t q);

}  // namespace hetgrid
