// Spanning-tree machinery for the exact solver (paper Section 4.3.1).
//
// The optimization variables r_1..r_p, c_1..c_q are the vertices of the
// complete bipartite graph K_{p,q}; the edge (r_i, c_j) carries the
// constraint r_i * t_ij * c_j <= 1. The paper shows the optimum of Obj2 is
// attained on a spanning tree whose edges are all tight (equalities), so the
// exact solver enumerates every spanning tree of K_{p,q}.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace hetgrid {

/// An edge of K_{p,q}: connects row vertex `row` (0-based, < p) with column
/// vertex `col` (0-based, < q).
struct BipartiteEdge {
  std::size_t row = 0;
  std::size_t col = 0;

  friend bool operator==(const BipartiteEdge&, const BipartiteEdge&) = default;
};

/// Union-find over p + q vertices (rows first, then columns), used both by
/// the enumerator and exposed for callers that build trees incrementally.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  std::size_t find(std::size_t x);
  /// Returns false (and does nothing) if x and y were already connected.
  bool unite(std::size_t x, std::size_t y);
  std::size_t components() const { return components_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t components_;
};

/// Invokes `visit` once per spanning tree of K_{p,q}; each tree is a list of
/// exactly p + q - 1 edges in ascending edge-index order. Returns the number
/// of trees visited. If `visit` returns false, enumeration stops early.
///
/// Complexity is proportional to the number of trees (p^{q-1} * q^{p-1},
/// Scoins' formula) plus pruned branches; intended for the small grids where
/// the paper's exact method is feasible.
std::uint64_t enumerate_spanning_trees(
    std::size_t p, std::size_t q,
    const std::function<bool(const std::vector<BipartiteEdge>&)>& visit);

/// Number of spanning trees of K_{p,q} by Scoins' formula p^{q-1} * q^{p-1}.
/// Used by tests to validate the enumerator and by callers to bound work
/// before launching the exact solver. Saturates at UINT64_MAX on overflow.
std::uint64_t spanning_tree_count(std::size_t p, std::size_t q);

}  // namespace hetgrid
