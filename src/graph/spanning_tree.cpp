#include "graph/spanning_tree.hpp"

#include <limits>

#include "util/check.hpp"

namespace hetgrid {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), components_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) {
  HG_DCHECK(x < parent_.size(), "find out of range");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t x, std::size_t y) {
  std::size_t rx = find(x), ry = find(y);
  if (rx == ry) return false;
  if (rank_[rx] < rank_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  if (rank_[rx] == rank_[ry]) ++rank_[rx];
  --components_;
  return true;
}

namespace {

struct Enumerator {
  std::size_t p, q, n_vertices, needed;
  std::vector<BipartiteEdge> edges;  // all p*q edges in fixed order
  std::vector<BipartiteEdge> chosen;
  const std::function<bool(const std::vector<BipartiteEdge>&)>* visit;
  std::uint64_t count = 0;
  bool stopped = false;

  // Returns true if the vertices can still be fully connected using the
  // current forest plus edges[idx..]; prunes dead branches early.
  bool completable(const UnionFind& uf_now, std::size_t idx) const {
    UnionFind uf = uf_now;  // small copy (p+q entries)
    for (std::size_t e = idx; e < edges.size(); ++e)
      uf.unite(edges[e].row, p + edges[e].col);
    return uf.components() == 1;
  }

  void recurse(std::size_t idx, UnionFind uf) {
    if (stopped) return;
    if (chosen.size() == needed) {
      ++count;
      if (!(*visit)(chosen)) stopped = true;
      return;
    }
    if (idx == edges.size()) return;
    if (chosen.size() + (edges.size() - idx) < needed) return;
    if (!completable(uf, idx)) return;

    // Branch 1: include edges[idx] if it joins two components.
    {
      UnionFind uf_in = uf;
      if (uf_in.unite(edges[idx].row, p + edges[idx].col)) {
        chosen.push_back(edges[idx]);
        recurse(idx + 1, std::move(uf_in));
        chosen.pop_back();
      }
    }
    // Branch 2: exclude edges[idx].
    recurse(idx + 1, std::move(uf));
  }
};

}  // namespace

std::uint64_t enumerate_spanning_trees(
    std::size_t p, std::size_t q,
    const std::function<bool(const std::vector<BipartiteEdge>&)>& visit) {
  HG_CHECK(p > 0 && q > 0, "grid dimensions must be positive");
  Enumerator en;
  en.p = p;
  en.q = q;
  en.n_vertices = p + q;
  en.needed = p + q - 1;
  en.visit = &visit;
  en.edges.reserve(p * q);
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < q; ++j) en.edges.push_back({i, j});
  en.chosen.reserve(en.needed);
  en.recurse(0, UnionFind(en.n_vertices));
  return en.count;
}

std::uint64_t spanning_tree_count(std::size_t p, std::size_t q) {
  HG_CHECK(p > 0 && q > 0, "grid dimensions must be positive");
  auto pow_sat = [](std::uint64_t base, std::size_t exp) {
    std::uint64_t acc = 1;
    for (std::size_t i = 0; i < exp; ++i) {
      if (base != 0 &&
          acc > std::numeric_limits<std::uint64_t>::max() / base)
        return std::numeric_limits<std::uint64_t>::max();
      acc *= base;
    }
    return acc;
  };
  const std::uint64_t a = pow_sat(p, q - 1);
  const std::uint64_t b = pow_sat(q, p - 1);
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a)
    return std::numeric_limits<std::uint64_t>::max();
  return a * b;
}

}  // namespace hetgrid
