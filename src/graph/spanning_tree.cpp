#include "graph/spanning_tree.hpp"

#include <limits>

#include "util/check.hpp"

namespace hetgrid {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), components_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) const {
  HG_DCHECK(x < parent_.size(), "find out of range");
  while (parent_[x] != x) x = parent_[x];
  return x;
}

bool UnionFind::unite(std::size_t x, std::size_t y) {
  std::size_t rx = find(x), ry = find(y);
  if (rx == ry) return false;
  if (rank_[rx] < rank_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  const bool bumped = rank_[rx] == rank_[ry];
  if (bumped) ++rank_[rx];
  --components_;
  log_.push_back({static_cast<std::uint32_t>(ry),
                  static_cast<std::uint32_t>(rx),
                  static_cast<std::uint8_t>(bumped)});
  return true;
}

void UnionFind::rollback(std::size_t mark) {
  HG_DCHECK(mark <= log_.size(), "rollback past the log");
  while (log_.size() > mark) {
    const UndoRecord rec = log_.back();
    log_.pop_back();
    parent_[rec.child_root] = rec.child_root;
    if (rec.rank_bumped) --rank_[rec.parent_root];
    ++components_;
  }
}

namespace {

// Iterative include/exclude walk over the edges of K_{p,q} in row-major
// order, sharing one undo-logged union-find. Frames mirror the recursion:
// stage 0 = node just entered, stage 1 = include branch explored (its union
// is pending rollback), stage 2 = exclude branch explored.
struct Enumerator {
  std::size_t p, q, needed;
  std::vector<BipartiteEdge> edges;  // all p*q edges in fixed order
  std::vector<BipartiteEdge> chosen;
  UnionFind uf;
  const std::function<bool(const std::vector<BipartiteEdge>&)>* visit;
  std::uint64_t count = 0;

  Enumerator(std::size_t p_, std::size_t q_)
      : p(p_), q(q_), needed(p_ + q_ - 1), uf(p_ + q_) {}

  // True if the vertices can still be fully connected using the current
  // forest plus edges[idx..]; prunes dead branches early.
  bool completable(std::size_t idx) {
    const std::size_t mark = uf.checkpoint();
    for (std::size_t e = idx; e < edges.size(); ++e)
      uf.unite(edges[e].row, p + edges[e].col);
    const bool ok = uf.components() == 1;
    uf.rollback(mark);
    return ok;
  }

  struct Frame {
    std::uint32_t idx;       // edge this node decides
    std::uint8_t stage;      // 0 fresh, 1 include explored, 2 exclude explored
    std::uint8_t included;   // include branch was actually taken
    std::size_t uf_mark;     // checkpoint before the include union
  };

  void run() {
    std::vector<Frame> stack;
    stack.reserve(edges.size() + 1);
    stack.push_back({0, 0, 0, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.stage == 0) {
        if (chosen.size() == needed) {
          ++count;
          if (!(*visit)(chosen)) return;
          stack.pop_back();
          continue;
        }
        if (f.idx == edges.size() ||
            chosen.size() + (edges.size() - f.idx) < needed ||
            !completable(f.idx)) {
          stack.pop_back();
          continue;
        }
        // Branch 1: include edges[idx] if it joins two components.
        f.uf_mark = uf.checkpoint();
        if (uf.unite(edges[f.idx].row, p + edges[f.idx].col)) {
          f.stage = 1;
          f.included = 1;
          chosen.push_back(edges[f.idx]);
        } else {
          f.stage = 2;  // cycle edge: only the exclude branch exists
        }
        stack.push_back({f.idx + 1, 0, 0, 0});
        continue;
      }
      if (f.stage == 1) {
        // Back from the include branch: undo it, then explore exclusion.
        chosen.pop_back();
        uf.rollback(f.uf_mark);
        f.stage = 2;
        stack.push_back({f.idx + 1, 0, 0, 0});
        continue;
      }
      stack.pop_back();  // both branches done
    }
  }
};

}  // namespace

std::uint64_t enumerate_spanning_trees(
    std::size_t p, std::size_t q,
    const std::function<bool(const std::vector<BipartiteEdge>&)>& visit) {
  HG_CHECK(p > 0 && q > 0, "grid dimensions must be positive");
  Enumerator en(p, q);
  en.visit = &visit;
  en.edges.reserve(p * q);
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < q; ++j) en.edges.push_back({i, j});
  en.chosen.reserve(en.needed);
  en.run();
  return en.count;
}

std::uint64_t spanning_tree_count(std::size_t p, std::size_t q) {
  HG_CHECK(p > 0 && q > 0, "grid dimensions must be positive");
  auto pow_sat = [](std::uint64_t base, std::size_t exp) {
    std::uint64_t acc = 1;
    for (std::size_t i = 0; i < exp; ++i) {
      if (base != 0 &&
          acc > std::numeric_limits<std::uint64_t>::max() / base)
        return std::numeric_limits<std::uint64_t>::max();
      acc *= base;
    }
    return acc;
  };
  const std::uint64_t a = pow_sat(p, q - 1);
  const std::uint64_t b = pow_sat(q, p - 1);
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a)
    return std::numeric_limits<std::uint64_t>::max();
  return a * b;
}

}  // namespace hetgrid
