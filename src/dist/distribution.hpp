// Block-to-processor distributions over a 2D processor grid.
//
// A distribution answers "which processor owns global block (I, J)?" for an
// N_b x M_b matrix of r x r blocks. All of the paper's schemes are periodic:
// ownership depends only on (I mod period_rows, J mod period_cols).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/cycle_time_grid.hpp"

namespace hetgrid {

/// Grid coordinates of a processor.
struct ProcCoord {
  std::size_t row = 0;
  std::size_t col = 0;

  friend bool operator==(const ProcCoord&, const ProcCoord&) = default;
};

/// Interface for periodic 2D block distributions.
class Distribution2D {
 public:
  virtual ~Distribution2D() = default;

  virtual std::size_t grid_rows() const = 0;
  virtual std::size_t grid_cols() const = 0;

  /// Period of the ownership pattern in each dimension (B_p, B_q).
  virtual std::size_t period_rows() const = 0;
  virtual std::size_t period_cols() const = 0;

  /// Owner of global block (I, J).
  virtual ProcCoord owner(std::size_t block_row,
                          std::size_t block_col) const = 0;

  virtual std::string name() const = 0;
};

/// Number of blocks each processor owns in an nb x mb block matrix;
/// indexed [grid_row * grid_cols + grid_col].
std::vector<std::size_t> blocks_per_processor(const Distribution2D& dist,
                                              std::size_t nb, std::size_t mb);

/// Parallel time for one fully parallel update sweep over an nb x mb block
/// matrix: max over processors of (owned blocks) * t_ij. The "one step of
/// the outer-product algorithm" cost that the allocation minimizes.
double sweep_makespan(const Distribution2D& dist, const CycleTimeGrid& grid,
                      std::size_t nb, std::size_t mb);

/// Result of the neighbor census: how many *distinct* processors sit
/// immediately west (resp. north) of each processor's blocks. The paper's
/// grid communication pattern requires at most one of each (Section 3.1.2);
/// Kalinov–Lastovetsky violates this (Figure 3).
struct NeighborCensus {
  /// Max over processors of the number of distinct west neighbors (owners
  /// of blocks immediately left of the processor's blocks). Descriptive:
  /// Figure 3 of the paper shows Kalinov–Lastovetsky giving a processor
  /// two west neighbors.
  std::size_t max_west_neighbors = 0;
  /// Max over processors of the number of distinct north neighbors.
  std::size_t max_north_neighbors = 0;
  /// The paper's Section 3.1.2 condition: the owner's grid row depends
  /// only on the block row and the owner's grid column only on the block
  /// column (each processor of a grid row owns the same matrix rows).
  /// This is what confines communication to the grid's rings; K–L
  /// violates it on non-rank-1 grids.
  bool aligned = false;

  /// True iff broadcasts stay on the grid rings — every processor
  /// communicates only with its direct grid neighbors.
  bool grid_pattern() const { return aligned; }
};

/// Scans one full period of the pattern (with wrap-around) and counts the
/// distinct west/north neighbor processors of every processor.
NeighborCensus neighbor_census(const Distribution2D& dist);

}  // namespace hetgrid
