#include "dist/distribution.hpp"

#include <algorithm>
#include <set>

namespace hetgrid {

std::vector<std::size_t> blocks_per_processor(const Distribution2D& dist,
                                              std::size_t nb,
                                              std::size_t mb) {
  const std::size_t p = dist.grid_rows(), q = dist.grid_cols();
  std::vector<std::size_t> counts(p * q, 0);
  // Count one period exactly, then scale; handle the ragged remainder
  // explicitly so arbitrary nb/mb are exact.
  for (std::size_t i = 0; i < nb; ++i)
    for (std::size_t j = 0; j < mb; ++j) {
      const ProcCoord o = dist.owner(i, j);
      counts[o.row * q + o.col] += 1;
    }
  return counts;
}

double sweep_makespan(const Distribution2D& dist, const CycleTimeGrid& grid,
                      std::size_t nb, std::size_t mb) {
  HG_CHECK(grid.rows() == dist.grid_rows() &&
               grid.cols() == dist.grid_cols(),
           "grid/distribution shape mismatch");
  const std::vector<std::size_t> counts = blocks_per_processor(dist, nb, mb);
  double worst = 0.0;
  for (std::size_t i = 0; i < grid.rows(); ++i)
    for (std::size_t j = 0; j < grid.cols(); ++j)
      worst = std::max(worst, static_cast<double>(
                                  counts[i * grid.cols() + j]) *
                                  grid(i, j));
  return worst;
}

NeighborCensus neighbor_census(const Distribution2D& dist) {
  const std::size_t bp = dist.period_rows();
  const std::size_t bq = dist.period_cols();
  const std::size_t p = dist.grid_rows(), q = dist.grid_cols();

  std::vector<std::set<std::size_t>> west(p * q), north(p * q);
  // Scan two periods in each direction so wrap-around adjacencies at the
  // period boundary are included.
  for (std::size_t i = 0; i < 2 * bp; ++i) {
    for (std::size_t j = 0; j < 2 * bq; ++j) {
      const ProcCoord me = dist.owner(i, j);
      const std::size_t my_id = me.row * q + me.col;
      if (j > 0) {
        const ProcCoord w = dist.owner(i, j - 1);
        const std::size_t w_id = w.row * q + w.col;
        if (w_id != my_id) west[my_id].insert(w_id);
      }
      if (i > 0) {
        const ProcCoord n = dist.owner(i - 1, j);
        const std::size_t n_id = n.row * q + n.col;
        if (n_id != my_id) north[my_id].insert(n_id);
      }
    }
  }

  NeighborCensus out;
  for (std::size_t id = 0; id < p * q; ++id) {
    out.max_west_neighbors = std::max(out.max_west_neighbors, west[id].size());
    out.max_north_neighbors =
        std::max(out.max_north_neighbors, north[id].size());
  }

  // Alignment check: within one period, every block row must map to a
  // single grid row across all block columns, and every block column to a
  // single grid column across all block rows.
  out.aligned = true;
  for (std::size_t i = 0; i < bp && out.aligned; ++i) {
    const std::size_t row0 = dist.owner(i, 0).row;
    for (std::size_t j = 1; j < bq; ++j)
      if (dist.owner(i, j).row != row0) {
        out.aligned = false;
        break;
      }
  }
  for (std::size_t j = 0; j < bq && out.aligned; ++j) {
    const std::size_t col0 = dist.owner(0, j).col;
    for (std::size_t i = 1; i < bp; ++i)
      if (dist.owner(i, j).col != col0) {
        out.aligned = false;
        break;
      }
  }
  return out;
}

}  // namespace hetgrid
