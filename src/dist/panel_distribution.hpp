// The paper's heterogeneous block-panel distribution (Section 3.1.2).
//
// A panel of B_p x B_q blocks is replicated cyclically over the matrix;
// within the panel, every block row is owned entirely by one grid row and
// every block column by one grid column (that is what guarantees the
// 4-neighbor grid communication pattern). The per-grid-row multiplicities
// r_i and per-grid-column multiplicities c_j come from the allocation
// solvers; the *order* of rows/columns within the panel is free for matrix
// multiplication and chosen by the 1D scheme for LU/QR (Section 3.2.2).
#pragma once

#include "core/allocation.hpp"
#include "core/cycle_time_grid.hpp"
#include "dist/distribution.hpp"

namespace hetgrid {

/// How to lay the per-row/column block multiplicities out inside a panel.
enum class PanelOrder {
  /// Grid row i's r_i block rows are consecutive (paper Figures 2 and 4's
  /// rows). Fine for matrix multiplication, where step cost is
  /// order-independent.
  kContiguous,
  /// Slots are interleaved by the greedy 1D schedule on the aggregate
  /// row/column speeds (the "ABAABA" ordering of Section 3.2.2). Keeps the
  /// shrinking trailing matrix of LU/QR balanced at every step.
  kInterleaved,
};

class PanelDistribution final : public Distribution2D {
 public:
  /// Direct construction from slot maps: row_map[s] = grid row owning the
  /// s-th block row of the panel (size B_p), likewise col_map (size B_q).
  /// Every grid row/column must own at least one slot.
  PanelDistribution(std::size_t p, std::size_t q,
                    std::vector<std::size_t> row_map,
                    std::vector<std::size_t> col_map, std::string name);

  /// Homogeneous ScaLAPACK block-cyclic distribution: B_p = p, B_q = q, one
  /// slot per grid row/column.
  static PanelDistribution block_cyclic(std::size_t p, std::size_t q);

  /// Builds a panel from integer multiplicities (counts_r[i] slots for grid
  /// row i, counts_c[j] for grid column j). Row and column slot orders are
  /// independent: the paper's LU layout (Figure 4) keeps rows contiguous
  /// but interleaves columns.
  static PanelDistribution from_counts(std::vector<std::size_t> counts_r,
                                       std::vector<std::size_t> counts_c,
                                       const CycleTimeGrid& grid,
                                       PanelOrder row_order,
                                       PanelOrder col_order,
                                       std::string name);

  /// Rounds a rational allocation to a B_p x B_q panel (largest-remainder,
  /// every grid row/column keeps at least one slot) and builds the panel.
  /// For kInterleaved, the slot order comes from the greedy 1D schedule on
  /// the aggregate row/column cycle-times implied by the allocation.
  static PanelDistribution from_allocation(const CycleTimeGrid& grid,
                                           const GridAllocation& alloc,
                                           std::size_t panel_rows,
                                           std::size_t panel_cols,
                                           PanelOrder row_order,
                                           PanelOrder col_order,
                                           std::string name);

  std::size_t grid_rows() const override { return p_; }
  std::size_t grid_cols() const override { return q_; }
  std::size_t period_rows() const override { return row_map_.size(); }
  std::size_t period_cols() const override { return col_map_.size(); }

  ProcCoord owner(std::size_t block_row,
                  std::size_t block_col) const override {
    return {row_map_[block_row % row_map_.size()],
            col_map_[block_col % col_map_.size()]};
  }

  std::string name() const override { return name_; }

  const std::vector<std::size_t>& row_map() const { return row_map_; }
  const std::vector<std::size_t>& col_map() const { return col_map_; }

  /// Blocks per panel owned by grid row i (the integer r_i).
  std::vector<std::size_t> row_multiplicities() const;
  /// Blocks per panel owned by grid column j (the integer c_j).
  std::vector<std::size_t> col_multiplicities() const;

 private:
  std::size_t p_, q_;
  std::vector<std::size_t> row_map_, col_map_;
  std::string name_;
};

/// Aggregate cycle-time of each grid column under an allocation: column j
/// behaves like a single processor of cycle-time 1 / sum_i (r_i / t_ij)
/// once rows are distributed with shares r_i (Section 3.2.2's "column
/// operates like" argument, generalized from equal shares).
std::vector<double> column_aggregate_cycle_times(
    const CycleTimeGrid& grid, const std::vector<std::size_t>& counts_r);

/// Same for grid rows (used to order block rows within the panel).
std::vector<double> row_aggregate_cycle_times(
    const CycleTimeGrid& grid, const std::vector<std::size_t>& counts_c);

}  // namespace hetgrid
