#include "dist/panel_distribution.hpp"

#include <algorithm>
#include <numeric>

#include "core/alloc1d.hpp"
#include "core/rounding.hpp"

namespace hetgrid {

namespace {

void check_slot_map(const std::vector<std::size_t>& map, std::size_t limit,
                    const char* what) {
  HG_CHECK(!map.empty(), what << " slot map is empty");
  std::vector<bool> seen(limit, false);
  for (std::size_t v : map) {
    HG_CHECK(v < limit, what << " slot map entry " << v << " out of range");
    seen[v] = true;
  }
  for (std::size_t g = 0; g < limit; ++g)
    HG_CHECK(seen[g], what << " grid index " << g << " owns no panel slot");
}

std::vector<std::size_t> contiguous_map(
    const std::vector<std::size_t>& counts) {
  std::vector<std::size_t> map;
  for (std::size_t g = 0; g < counts.size(); ++g)
    map.insert(map.end(), counts[g], g);
  return map;
}

std::vector<std::size_t> interleaved_map(
    const std::vector<std::size_t>& counts,
    const std::vector<double>& aggregate_times) {
  // The greedy 1D schedule on the aggregate speeds decides which grid
  // row/column takes each successive panel slot; we then clamp to the
  // requested counts (the greedy and the rounding can differ by one unit
  // when shares round differently).
  const std::size_t slots =
      std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  std::vector<std::size_t> remaining = counts;
  std::vector<std::size_t> map;
  map.reserve(slots);

  // Re-run the greedy but skip entities whose quota is exhausted.
  std::vector<std::size_t> given(counts.size(), 0);
  for (std::size_t s = 0; s < slots; ++s) {
    std::size_t best = counts.size();
    double best_finish = 0.0;
    for (std::size_t g = 0; g < counts.size(); ++g) {
      if (given[g] == counts[g]) continue;
      const double finish =
          static_cast<double>(given[g] + 1) * aggregate_times[g];
      if (best == counts.size() || finish < best_finish) {
        best = g;
        best_finish = finish;
      }
    }
    HG_INTERNAL_CHECK(best < counts.size(), "slot quota bookkeeping broken");
    given[best] += 1;
    map.push_back(best);
  }
  return map;
}

}  // namespace

PanelDistribution::PanelDistribution(std::size_t p, std::size_t q,
                                     std::vector<std::size_t> row_map,
                                     std::vector<std::size_t> col_map,
                                     std::string name)
    : p_(p), q_(q), row_map_(std::move(row_map)),
      col_map_(std::move(col_map)), name_(std::move(name)) {
  HG_CHECK(p > 0 && q > 0, "grid dimensions must be positive");
  check_slot_map(row_map_, p_, "row");
  check_slot_map(col_map_, q_, "column");
}

PanelDistribution PanelDistribution::block_cyclic(std::size_t p,
                                                  std::size_t q) {
  std::vector<std::size_t> rmap(p), cmap(q);
  std::iota(rmap.begin(), rmap.end(), std::size_t{0});
  std::iota(cmap.begin(), cmap.end(), std::size_t{0});
  return PanelDistribution(p, q, std::move(rmap), std::move(cmap),
                           "block-cyclic");
}

PanelDistribution PanelDistribution::from_counts(
    std::vector<std::size_t> counts_r, std::vector<std::size_t> counts_c,
    const CycleTimeGrid& grid, PanelOrder row_order, PanelOrder col_order,
    std::string name) {
  HG_CHECK(counts_r.size() == grid.rows() && counts_c.size() == grid.cols(),
           "counts shape does not match grid");
  std::vector<std::size_t> rmap =
      row_order == PanelOrder::kContiguous
          ? contiguous_map(counts_r)
          : interleaved_map(counts_r,
                            row_aggregate_cycle_times(grid, counts_c));
  std::vector<std::size_t> cmap =
      col_order == PanelOrder::kContiguous
          ? contiguous_map(counts_c)
          : interleaved_map(counts_c,
                            column_aggregate_cycle_times(grid, counts_r));
  return PanelDistribution(grid.rows(), grid.cols(), std::move(rmap),
                           std::move(cmap), std::move(name));
}

PanelDistribution PanelDistribution::from_allocation(
    const CycleTimeGrid& grid, const GridAllocation& alloc,
    std::size_t panel_rows, std::size_t panel_cols, PanelOrder row_order,
    PanelOrder col_order, std::string name) {
  HG_CHECK(alloc.shapes_match(grid), "allocation does not match grid");
  std::vector<std::size_t> counts_r =
      round_to_sum_positive(alloc.r, panel_rows);
  std::vector<std::size_t> counts_c =
      round_to_sum_positive(alloc.c, panel_cols);
  return from_counts(std::move(counts_r), std::move(counts_c), grid,
                     row_order, col_order, std::move(name));
}

std::vector<std::size_t> PanelDistribution::row_multiplicities() const {
  std::vector<std::size_t> counts(p_, 0);
  for (std::size_t g : row_map_) counts[g] += 1;
  return counts;
}

std::vector<std::size_t> PanelDistribution::col_multiplicities() const {
  std::vector<std::size_t> counts(q_, 0);
  for (std::size_t g : col_map_) counts[g] += 1;
  return counts;
}

std::vector<double> column_aggregate_cycle_times(
    const CycleTimeGrid& grid, const std::vector<std::size_t>& counts_r) {
  HG_CHECK(counts_r.size() == grid.rows(), "counts shape mismatch");
  std::vector<double> agg(grid.cols());
  for (std::size_t j = 0; j < grid.cols(); ++j) {
    double cap = 0.0;
    for (std::size_t i = 0; i < grid.rows(); ++i)
      cap += static_cast<double>(counts_r[i]) / grid(i, j);
    HG_CHECK(cap > 0.0, "grid column " << j << " has zero capacity");
    agg[j] = 1.0 / cap;
  }
  return agg;
}

std::vector<double> row_aggregate_cycle_times(
    const CycleTimeGrid& grid, const std::vector<std::size_t>& counts_c) {
  HG_CHECK(counts_c.size() == grid.cols(), "counts shape mismatch");
  std::vector<double> agg(grid.rows());
  for (std::size_t i = 0; i < grid.rows(); ++i) {
    double cap = 0.0;
    for (std::size_t j = 0; j < grid.cols(); ++j)
      cap += static_cast<double>(counts_c[j]) / grid(i, j);
    HG_CHECK(cap > 0.0, "grid row " << i << " has zero capacity");
    agg[i] = 1.0 / cap;
  }
  return agg;
}

}  // namespace hetgrid
