#include "dist/kalinov_lastovetsky.hpp"

#include <numeric>

#include "core/alloc1d.hpp"

namespace hetgrid {

KalinovLastovetskyDistribution::KalinovLastovetskyDistribution(
    const CycleTimeGrid& grid, std::vector<std::size_t> row_periods,
    std::size_t col_period) {
  build(grid, std::move(row_periods), col_period);
}

KalinovLastovetskyDistribution::KalinovLastovetskyDistribution(
    const CycleTimeGrid& grid, std::size_t row_period,
    std::size_t col_period) {
  build(grid, std::vector<std::size_t>(grid.cols(), row_period), col_period);
}

void KalinovLastovetskyDistribution::build(
    const CycleTimeGrid& grid, std::vector<std::size_t> row_periods,
    std::size_t col_period) {
  p_ = grid.rows();
  q_ = grid.cols();
  HG_CHECK(row_periods.size() == q_,
           "need one row period per grid column, got " << row_periods.size());
  HG_CHECK(col_period >= q_,
           "column period " << col_period << " smaller than grid columns "
                            << q_);

  // Step 1: inside each grid column, balance row slots by the 1D scheme on
  // that column's own cycle-times.
  row_maps_.resize(q_);
  std::vector<double> column_capacity(q_, 0.0);
  for (std::size_t j = 0; j < q_; ++j) {
    HG_CHECK(row_periods[j] >= p_, "row period " << row_periods[j]
                                                 << " smaller than grid rows "
                                                 << p_);
    std::vector<double> column_times(p_);
    for (std::size_t i = 0; i < p_; ++i) column_times[i] = grid(i, j);
    const Alloc1dResult a = allocate_1d(column_times, row_periods[j]);
    row_maps_[j] = a.order;
    for (std::size_t i = 0; i < p_; ++i)
      column_capacity[j] += 1.0 / column_times[i];
  }

  // Step 2: balance column slots across grid columns by aggregate speed
  // (1 / sum_i 1/t_ij), again with the 1D scheme.
  std::vector<double> aggregate(q_);
  for (std::size_t j = 0; j < q_; ++j) aggregate[j] = 1.0 / column_capacity[j];
  col_map_ = allocate_1d(aggregate, col_period).order;

  // Full vertical period = lcm of the per-column row periods.
  row_period_lcm_ = 1;
  for (std::size_t j = 0; j < q_; ++j)
    row_period_lcm_ = std::lcm(row_period_lcm_, row_maps_[j].size());
}

std::vector<std::size_t>
KalinovLastovetskyDistribution::row_counts_of_column(std::size_t gj) const {
  HG_CHECK(gj < q_, "grid column out of range");
  std::vector<std::size_t> counts(p_, 0);
  for (std::size_t g : row_maps_[gj]) counts[g] += 1;
  return counts;
}

std::vector<std::size_t> KalinovLastovetskyDistribution::col_counts() const {
  std::vector<std::size_t> counts(q_, 0);
  for (std::size_t g : col_map_) counts[g] += 1;
  return counts;
}

}  // namespace hetgrid
