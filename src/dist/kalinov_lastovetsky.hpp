// The heterogeneous block-cyclic distribution of Kalinov & Lastovetsky
// (HPCN'99), the baseline the paper compares its grid-constrained scheme
// against (Section 3.1.2, Figure 3).
//
// K–L relaxes the grid communication pattern: each processor *column*
// balances matrix rows among its own processors independently (1D scheme),
// and matrix columns are balanced across processor columns by their
// aggregate speeds. Load balance is perfect in the rational limit, but
// processors can end up with several west/north neighbors, so broadcast
// cost is no longer bounded by the grid degree.
#pragma once

#include "core/cycle_time_grid.hpp"
#include "dist/distribution.hpp"

namespace hetgrid {

class KalinovLastovetskyDistribution final : public Distribution2D {
 public:
  /// `row_periods[j]` is the row-slot period used inside grid column j
  /// (the paper's example uses 4 for the {1,3} column and 7 for the {2,5}
  /// column); `col_period` is the number of column slots distributed across
  /// grid columns (61 in the example).
  KalinovLastovetskyDistribution(const CycleTimeGrid& grid,
                                 std::vector<std::size_t> row_periods,
                                 std::size_t col_period);

  /// Convenience: the same row period in every grid column.
  KalinovLastovetskyDistribution(const CycleTimeGrid& grid,
                                 std::size_t row_period,
                                 std::size_t col_period);

  std::size_t grid_rows() const override { return p_; }
  std::size_t grid_cols() const override { return q_; }
  std::size_t period_rows() const override { return row_period_lcm_; }
  std::size_t period_cols() const override { return col_map_.size(); }

  ProcCoord owner(std::size_t block_row,
                  std::size_t block_col) const override {
    const std::size_t gj = col_map_[block_col % col_map_.size()];
    const auto& rmap = row_maps_[gj];
    return {rmap[block_row % rmap.size()], gj};
  }

  std::string name() const override { return "kalinov-lastovetsky"; }

  const std::vector<std::size_t>& col_map() const { return col_map_; }
  const std::vector<std::size_t>& row_map_of_column(std::size_t gj) const {
    HG_CHECK(gj < q_, "grid column out of range");
    return row_maps_[gj];
  }

  /// Row-slot counts per processor within grid column gj.
  std::vector<std::size_t> row_counts_of_column(std::size_t gj) const;
  /// Column-slot counts per grid column.
  std::vector<std::size_t> col_counts() const;

 private:
  void build(const CycleTimeGrid& grid,
             std::vector<std::size_t> row_periods, std::size_t col_period);

  std::size_t p_ = 0, q_ = 0;
  std::vector<std::vector<std::size_t>> row_maps_;  // one per grid column
  std::vector<std::size_t> col_map_;
  std::size_t row_period_lcm_ = 1;
};

}  // namespace hetgrid
